"""Exact-sequence guarantees of batched delay sampling.

The transport's delay cache (PR 6) may prefetch any number of draws ahead of
the kernel, so correctness of every experiment rests on one contract:
``DelayModel.sample_batch(rng, k)`` returns bit-identical floats to ``k``
per-call ``sample(rng)`` draws and leaves ``rng`` in the identical state --
with or without numpy, for every model, at any batch size.
"""

import random

import pytest

import repro.sim.rng as rng_module
from repro.network.delays import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    LogNormalDelay,
    SpikeDelay,
    UniformDelay,
)
from repro.network.empirical import (
    REFERENCE_RTT_MS,
    EmpiricalDelay,
    ShiftedLogNormalDelay,
    TraceReplayDelay,
    scale_to_unit_mean,
)
from repro.network.transport import Network
from repro.sim.rng import RandomSource, random_block

_UNIT_RTT = scale_to_unit_mean(REFERENCE_RTT_MS)

# Long enough for the 512-draw batch tests AND the transport test: serving
# 700 cached draws consumes 1008 prefetched entries (refills double
# 16..512), so the replay trace needs headroom well past the draw count.
_TRACE = tuple(random.Random(8).uniform(0.2, 3.0) for _ in range(2048))

MODELS = [
    ConstantDelay(),
    UniformDelay(),
    UniformDelay(low=0.1, high=9.0),
    ExponentialDelay(),
    ExponentialDelay(mean=3.0, floor=0.25),
    LogNormalDelay(),
    # spike_probability=0.5 exercises both branches of the two-draw recipe
    # in every batch size.
    SpikeDelay(),
    SpikeDelay(spike_probability=0.5),
    # The trace-driven models: a hand-rolled coarse grid, the fitted pair
    # (ECDF sketch + shifted log-normal) and a deterministic trace replay.
    EmpiricalDelay(quantiles=(0.5, 0.75, 1.0, 2.0, 4.0)),
    EmpiricalDelay.fit(_UNIT_RTT),
    ShiftedLogNormalDelay.fit(_UNIT_RTT),
    TraceReplayDelay(_TRACE),
]

BATCH_SIZES = [1, 7, 512]


def _model_id(model):
    # ``describe()`` is ``repr`` for the synthetic models and a bounded
    # digest for the trace-driven ones (a 2048-float repr makes no test id).
    return model.describe()


@pytest.fixture(params=[True, False], ids=["numpy", "no-numpy"])
def maybe_numpy(request, monkeypatch):
    """Run the test body with the vectorized refill on and off."""
    if request.param:
        if rng_module._np is None:
            pytest.skip("numpy not installed")
    else:
        monkeypatch.setattr(rng_module, "_np", None)
    return request.param


@pytest.mark.parametrize("k", BATCH_SIZES)
@pytest.mark.parametrize("model", MODELS, ids=_model_id)
def test_sample_batch_is_exact_sequence(model, k, maybe_numpy):
    """Batched draws equal per-call draws bit for bit, same end state."""
    seed = 12345
    batched_rng = random.Random(seed)
    percall_rng = random.Random(seed)
    batched = model.sample_batch(batched_rng, k)
    percall = [model.sample(percall_rng) for _ in range(k)]
    assert batched == percall
    assert batched_rng.getstate() == percall_rng.getstate()


@pytest.mark.parametrize("model", MODELS, ids=_model_id)
def test_interleaved_batches_continue_the_stream(model, maybe_numpy):
    """Mixed batch sizes and per-call draws walk one uninterrupted stream."""
    seed = 777
    mixed_rng = random.Random(seed)
    percall_rng = random.Random(seed)
    mixed = []
    mixed.extend(model.sample_batch(mixed_rng, 3))
    mixed.append(model.sample(mixed_rng))
    mixed.extend(model.sample_batch(mixed_rng, 16))
    mixed.extend(model.sample_batch(mixed_rng, 1))
    percall = [model.sample(percall_rng) for _ in range(len(mixed))]
    assert mixed == percall
    assert mixed_rng.getstate() == percall_rng.getstate()


def test_spike_delay_consumes_two_draws_per_sample(maybe_numpy):
    """The SpikeDelay recipe: spike coin then magnitude, two uniforms each.

    Verified structurally (state advance) on top of the value equality the
    other tests give: after ``k`` samples both the batched and the per-call
    rng have consumed exactly ``2 * k`` uniforms.
    """
    model = SpikeDelay(spike_probability=0.5)
    rng = random.Random(99)
    counter_rng = random.Random(99)
    model.sample_batch(rng, 25)
    for _ in range(2 * 25):
        counter_rng.random()
    assert rng.getstate() == counter_rng.getstate()


def test_base_class_batch_is_the_percall_loop():
    """Models without an override inherit the per-call loop (still exact)."""

    class CountingModel(DelayModel):
        def __init__(self):
            self.calls = 0

        def sample(self, rng):
            self.calls += 1
            return rng.random() + 1.0

    model = CountingModel()
    rng = random.Random(5)
    reference = random.Random(5)
    assert model.sample_batch(rng, 7) == [reference.random() + 1.0 for _ in range(7)]
    assert model.calls == 7


def test_subclass_of_vectorized_model_falls_back_to_percall():
    """A subclass overriding ``sample`` must not inherit the parent's refill."""

    class DoubledUniform(UniformDelay):
        def sample(self, rng):
            return 2.0 * super().sample(rng)

    model = DoubledUniform()
    rng = random.Random(21)
    reference = random.Random(21)
    expected = [model.sample(reference) for _ in range(9)]
    assert model.sample_batch(rng, 9) == expected


@pytest.mark.parametrize(
    "base", [EmpiricalDelay(quantiles=(0.5, 1.0, 2.0)), TraceReplayDelay(_TRACE)], ids=_model_id
)
def test_subclass_of_trace_driven_model_falls_back_to_percall(base):
    """The ``type(self) is not X`` guard also protects the new overrides."""

    class Doubled(type(base)):
        def sample(self, rng):
            return 2.0 * super().sample(rng)

    model = Doubled(**{field: getattr(base, field) for field in base.__dataclass_fields__})
    rng = random.Random(23)
    reference = random.Random(23)
    expected = [model.sample(reference) for _ in range(9)]
    assert model.sample_batch(rng, 9) == expected
    assert rng.getstate() == reference.getstate()


@pytest.mark.parametrize("k", [0, 1, 7, 8, 512])
def test_random_block_matches_percall_uniforms(k, maybe_numpy):
    """The block primitive under every path: empty, loop and vectorized."""
    rng = random.Random(31337)
    reference = random.Random(31337)
    block = random_block(rng, k)
    assert block == [reference.random() for _ in range(k)]
    assert rng.getstate() == reference.getstate()


# ------------------------------------------------------------ transport seam
@pytest.mark.parametrize(
    "model",
    [
        UniformDelay(),
        ExponentialDelay(),
        SpikeDelay(),
        EmpiricalDelay.fit(_UNIT_RTT),
        ShiftedLogNormalDelay.fit(_UNIT_RTT),
        TraceReplayDelay(_TRACE),
    ],
    ids=_model_id,
)
def test_network_delay_cache_serves_the_percall_stream(model, maybe_numpy):
    """``Network.sample_delay`` with the refill cache equals per-call draws.

    The reference stream is rebuilt from a fresh ``RandomSource`` with the
    same master seed: the network's delays stream is its sole consumer, so
    draw ``i`` must be the same float no matter how far the cache prefetched.
    """
    network = Network(8, delay_model=model, rng=RandomSource(17))
    reference_rng = RandomSource(17).stream("network", "delays")
    for i in range(700):
        sender = i % 8
        dest = (i * 3 + 1) % 8
        expected = model.sample(reference_rng)
        if sender == dest:
            expected *= network.self_delay_factor
        assert network.sample_delay(sender, dest) == expected, f"draw {i} diverged"


def test_transmit_equals_prepare_plus_sample_delay():
    """The combined hot-path seam is the two public methods, exactly."""
    combined = Network(6, delay_model=UniformDelay(), rng=RandomSource(3))
    split = Network(6, delay_model=UniformDelay(), rng=RandomSource(3))
    payloads = [None, 0, 7, "text", (1, 2, 3), {"k": 1.5}, ["x", ("y",)]]
    for i in range(200):
        sender = i % 6
        dest = (i + 1 + i // 6) % 6
        payload = payloads[i % len(payloads)]
        message, delay = combined.transmit(sender, dest, payload, float(i))
        expected_message = split.prepare(sender, dest, payload, float(i))
        expected_delay = split.sample_delay(sender, dest)
        assert message == expected_message
        assert type(message) is type(expected_message)
        assert (message.sender, message.dest, message.payload) == (sender, dest, payload)
        assert message.send_time == float(i)
        assert message.msg_id == expected_message.msg_id
        assert delay == expected_delay
    assert combined.stats.as_dict() == split.stats.as_dict()
    assert dict(combined.stats.sent_by_process) == dict(split.stats.sent_by_process)


def test_transmit_validates_pids_like_prepare():
    network = Network(4, rng=RandomSource(1))
    with pytest.raises(ValueError):
        network.transmit(0, 9, "payload", 0.0)
    with pytest.raises(ValueError):
        network.transmit(-1, 0, "payload", 0.0)
