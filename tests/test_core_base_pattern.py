"""Unit tests for the core definitions and the msg_exchange scan logic."""

import pytest

from tests.helpers import make_message

from repro.cluster.topology import ClusterTopology
from repro.core.base import (
    BOT,
    DecideMessage,
    PhaseMessage,
    ProcessEnvironment,
    validate_proposal,
)
from repro.core.pattern import ExchangeOutcome, scan_mailbox
from repro.sharedmem.memory import ClusterSharedMemory


# ------------------------------------------------------------------------- base
def test_bot_is_a_singleton_with_nice_repr():
    from repro.core.base import _Bottom

    assert BOT is _Bottom()
    assert repr(BOT) == "⊥"
    assert BOT not in (0, 1)


def test_validate_proposal_accepts_only_bits():
    assert validate_proposal(0) == 0
    assert validate_proposal(1) == 1
    for bad in (2, -1, None, "1", BOT):
        with pytest.raises(ValueError):
            validate_proposal(bad)


def test_phase_and_decide_messages_are_frozen():
    msg = PhaseMessage(tag="t", round_number=1, phase=2, est=BOT)
    with pytest.raises(AttributeError):
        msg.est = 1
    decide = DecideMessage(tag="t", value=1)
    with pytest.raises(AttributeError):
        decide.value = 0


def test_process_environment_validation():
    topo = ClusterTopology.figure1_right()
    memory = ClusterSharedMemory(1, topo.cluster_members(1))
    env = ProcessEnvironment(pid=2, proposal=1, topology=topo, memory=memory)
    assert env.cluster_index == 1
    assert env.cluster == frozenset({1, 2, 3, 4})
    with pytest.raises(ValueError):
        ProcessEnvironment(pid=99, proposal=1, topology=topo)
    with pytest.raises(ValueError):
        ProcessEnvironment(pid=2, proposal=7, topology=topo)
    with pytest.raises(Exception):
        ProcessEnvironment(pid=0, proposal=1, topology=topo, memory=memory)  # not a member


# --------------------------------------------------------------------- pattern
def _env(topology, pid=0):
    return ProcessEnvironment(pid=pid, proposal=0, topology=topology)


def phase_msg(sender, est, r=1, ph=1, tag="t"):
    return make_message(sender, PhaseMessage(tag=tag, round_number=r, phase=ph, est=est))


def test_scan_empty_mailbox_has_no_supporters():
    topo = ClusterTopology.even_split(6, 3)
    outcome = scan_mailbox([], _env(topo), "t", 1, 1)
    assert outcome.kind == "supporters"
    assert outcome.heard == frozenset()
    assert outcome.values_received == frozenset()
    assert outcome.majority_value(topo) is None


def test_scan_attributes_whole_cluster_to_one_sender():
    topo = ClusterTopology([[0, 1, 2, 3], [4, 5], [6]])
    outcome = scan_mailbox([phase_msg(0, est=1)], _env(topo), "t", 1, 1)
    # One message from cluster {0,1,2,3} counts for all four members.
    assert outcome.supporters_of(1) == frozenset({0, 1, 2, 3})
    assert outcome.heard == frozenset({0, 1, 2, 3})
    assert outcome.majority_value(topo) == 1


def test_scan_without_cluster_expansion_counts_senders_only():
    topo = ClusterTopology([[0, 1, 2, 3], [4, 5], [6]])
    outcome = scan_mailbox([phase_msg(0, est=1)], _env(topo), "t", 1, 1, expand_clusters=False)
    assert outcome.supporters_of(1) == frozenset({0})
    assert outcome.majority_value(topo) is None


def test_scan_ignores_other_rounds_phases_and_tags():
    topo = ClusterTopology.even_split(4, 2)
    mailbox = [
        phase_msg(0, est=1, r=2),
        phase_msg(1, est=1, ph=2),
        phase_msg(2, est=1, tag="other"),
        make_message(3, "not a protocol message"),
    ]
    outcome = scan_mailbox(mailbox, _env(topo), "t", 1, 1)
    assert outcome.heard == frozenset()


def test_scan_decide_message_short_circuits():
    topo = ClusterTopology.even_split(4, 2)
    mailbox = [phase_msg(0, est=1), make_message(2, DecideMessage(tag="t", value=0))]
    outcome = scan_mailbox(mailbox, _env(topo), "t", 1, 1)
    assert outcome.is_decide
    assert outcome.decide_value == 0


def test_scan_decide_message_with_other_tag_is_ignored():
    topo = ClusterTopology.even_split(4, 2)
    mailbox = [make_message(2, DecideMessage(tag="other", value=0))]
    outcome = scan_mailbox(mailbox, _env(topo), "t", 1, 1)
    assert not outcome.is_decide


def test_scan_collects_bot_values_and_mixed_sets():
    topo = ClusterTopology([[0, 1], [2, 3], [4]])
    mailbox = [phase_msg(0, est=1, ph=2), phase_msg(2, est=BOT, ph=2)]
    outcome = scan_mailbox(mailbox, _env(topo), "t", 1, 2)
    assert outcome.values_received == frozenset({1, BOT})
    assert outcome.supporters_of(BOT) == frozenset({2, 3})
    assert outcome.heard == frozenset({0, 1, 2, 3})


def test_majority_value_requires_strict_majority():
    topo = ClusterTopology([[0, 1], [2, 3]])
    # Two of four supporters is not a strict majority.
    outcome = scan_mailbox([phase_msg(0, est=1)], _env(topo), "t", 1, 1)
    assert outcome.majority_value(topo) is None
    outcome = scan_mailbox([phase_msg(0, est=1), phase_msg(2, est=1)], _env(topo), "t", 1, 1)
    assert outcome.majority_value(topo) == 1


def test_at_most_one_majority_value_possible():
    topo = ClusterTopology.even_split(5, 5)
    mailbox = [phase_msg(pid, est=(0 if pid < 3 else 1)) for pid in range(5)]
    outcome = scan_mailbox(mailbox, _env(topo), "t", 1, 1)
    assert outcome.majority_value(topo) == 0
    assert outcome.supporters_of(0) == frozenset({0, 1, 2})
    assert outcome.supporters_of(1) == frozenset({3, 4})


def test_duplicate_messages_from_same_cluster_do_not_inflate_support():
    topo = ClusterTopology([[0, 1, 2], [3, 4]])
    mailbox = [phase_msg(0, est=1), phase_msg(1, est=1), phase_msg(2, est=1)]
    outcome = scan_mailbox(mailbox, _env(topo), "t", 1, 1)
    assert outcome.supporters_of(1) == frozenset({0, 1, 2})


def test_exchange_outcome_helpers():
    outcome = ExchangeOutcome(kind="supporters", round_number=1, phase=1)
    assert outcome.supporters_of(0) == frozenset()
    decide = ExchangeOutcome(kind="decide", round_number=1, phase=1, decide_value=1)
    assert decide.is_decide
