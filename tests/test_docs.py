"""Documentation health: the front-door files exist and their links resolve."""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_markdown_links", REPO_ROOT / "scripts" / "check_markdown_links.py"
)
check_markdown_links = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_markdown_links)


def test_front_door_documents_exist():
    for relative in (
        "README.md",
        "docs/experiments.md",
        "docs/simulator.md",
        "examples/README.md",
        "src/repro/harness/README.md",
    ):
        assert (REPO_ROOT / relative).is_file(), f"missing documentation file {relative}"


def test_front_door_documents_are_on_the_checked_surface():
    surface = {path.relative_to(REPO_ROOT).as_posix() for path in check_markdown_links.doc_files(REPO_ROOT)}
    assert {"README.md", "ROADMAP.md", "docs/experiments.md", "examples/README.md"} <= surface


def test_all_relative_markdown_links_resolve():
    broken = check_markdown_links.broken_links(REPO_ROOT)
    assert broken == [], "broken markdown links: " + ", ".join(
        f"{md.name} -> {target}" for md, target in broken
    )


def test_experiments_doc_covers_all_nine_drivers():
    text = (REPO_ROOT / "docs" / "experiments.md").read_text()
    for experiment in ("e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"):
        assert f"## {experiment} — " in text, f"docs/experiments.md lacks a section for {experiment}"
    assert "--shard" in text and "merge" in text  # the sharded form is documented
    assert "--scenario" in text  # e9's scenario restriction is documented


def test_simulator_doc_covers_the_internals():
    text = (REPO_ROOT / "docs" / "simulator.md").read_text()
    for topic in ("event loop", "effect", "delay model", "adversary"):
        assert topic in text.lower(), f"docs/simulator.md lacks the {topic!r} topic"
