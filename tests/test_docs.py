"""Documentation health: front-door files exist, links resolve, commands parse."""

import importlib.util
import shlex
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_markdown_links", REPO_ROOT / "scripts" / "check_markdown_links.py"
)
check_markdown_links = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_markdown_links)


def test_front_door_documents_exist():
    for relative in (
        "README.md",
        "docs/architecture.md",
        "docs/distributed.md",
        "docs/experiments.md",
        "docs/observability.md",
        "docs/simulator.md",
        "examples/README.md",
        "src/repro/harness/README.md",
    ):
        assert (REPO_ROOT / relative).is_file(), f"missing documentation file {relative}"


def test_front_door_documents_are_on_the_checked_surface():
    surface = {path.relative_to(REPO_ROOT).as_posix() for path in check_markdown_links.doc_files(REPO_ROOT)}
    assert {
        "README.md",
        "ROADMAP.md",
        "docs/architecture.md",
        "docs/distributed.md",
        "docs/experiments.md",
        "examples/README.md",
    } <= surface


def test_all_relative_markdown_links_resolve():
    broken = check_markdown_links.broken_links(REPO_ROOT)
    assert broken == [], "broken markdown links: " + ", ".join(
        f"{md.name} -> {target}" for md, target in broken
    )


def test_experiments_doc_covers_all_drivers():
    text = (REPO_ROOT / "docs" / "experiments.md").read_text()
    for experiment in (
        "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11",
    ):
        assert f"## {experiment} — " in text, f"docs/experiments.md lacks a section for {experiment}"
    assert "--shard" in text and "merge" in text  # the sharded form is documented
    assert "--scenario" in text  # e9/e10/e11's scenario restriction is documented
    assert "fit-delays" in text  # e11's empirical-delay workflow is documented


def test_simulator_doc_covers_the_internals():
    text = (REPO_ROOT / "docs" / "simulator.md").read_text()
    for topic in (
        "event loop",
        "effect",
        "delay model",
        "adversary",
        # The trace-driven delay models and their fitting workflow.
        "empiricaldelay",
        "tracereplaydelay",
        "fit-delays",
        "sample_batch",
    ):
        assert topic in text.lower(), f"docs/simulator.md lacks the {topic!r} topic"


def test_distributed_doc_covers_the_protocol():
    text = (REPO_ROOT / "docs" / "distributed.md").read_text().lower()
    for topic in (
        "lease",
        "steal",
        "heartbeat",
        "manifest version",
        "checkpoint",
        "clock skew",
        "killed",
        "bit-identical",
        "--steal",
    ):
        assert topic in text, f"docs/distributed.md lacks the {topic!r} topic"


def test_observability_doc_covers_the_surface():
    text = (REPO_ROOT / "docs" / "observability.md").read_text().lower()
    for topic in (
        "jsonl",
        "trace_sink",
        "telemetry",
        "/status",
        "/progress",
        "/workers",
        "/aggregate",
        "--watch",
        "--wait",
        "bit-identical",
        "incremental",
    ):
        assert topic in text, f"docs/observability.md lacks the {topic!r} topic"


def test_architecture_doc_maps_every_package():
    text = (REPO_ROOT / "docs" / "architecture.md").read_text()
    packages = (
        "sim", "network", "sharedmem", "coins", "cluster", "core",
        "baselines", "mm", "adversary", "harness", "experiments", "obs",
        "cli",
    )
    for package in packages:
        assert f"repro.{package}" in text, f"docs/architecture.md lacks repro.{package}"
    for deep_dive in ("simulator.md", "distributed.md", "experiments.md"):
        assert deep_dive in text, f"docs/architecture.md does not link {deep_dive}"


#: Documentation whose ``python -m repro ...`` lines must parse against the
#: real argparse surface -- the docs cannot drift from the CLI silently.
INVOCATION_DOCS = (
    "README.md",
    "docs/experiments.md",
    "docs/distributed.md",
    "docs/observability.md",
    "docs/simulator.md",
)


def documented_invocations():
    """Every concrete ``python -m repro`` command line on the doc surface."""
    commands = []
    for relative in INVOCATION_DOCS:
        for line in (REPO_ROOT / relative).read_text().splitlines():
            stripped = line.strip()
            if not stripped.startswith("python -m repro"):
                continue
            if "<" in stripped or "…" in stripped:
                continue  # placeholder forms like `run <experiment>`
            argv = shlex.split(stripped, comments=True)[3:]  # drop `python -m repro`
            commands.append((relative, stripped, argv))
    return commands


def test_documented_invocations_match_the_argparse_surface():
    commands = documented_invocations()
    assert len(commands) >= 12, "the docs should show plenty of concrete invocations"
    assert any("--steal" in argv for _, _, argv in commands)
    assert any("--shard" in argv for _, _, argv in commands)
    assert any("fit-delays" in argv for _, _, argv in commands)
    for relative, line, argv in commands:
        parser = build_parser()
        try:
            parser.parse_args(argv)
        except SystemExit:
            pytest.fail(f"{relative} documents a command the CLI rejects: {line}")
