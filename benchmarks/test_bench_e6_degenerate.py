"""Benchmark E6 — degenerate configurations: m=n reduces to Ben-Or, m=1 to shared memory."""

from repro.experiments import e6_degenerate
from repro.experiments.common import default_seeds

SEEDS = default_seeds(15)


def test_bench_e6_degenerate(benchmark):
    report = benchmark.pedantic(
        lambda: e6_degenerate.run(seeds=SEEDS, n=7), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(report.format())
    assert report.passed
    shared = report.row_where(configuration="shared-memory baseline")
    single_cluster = report.row_where(configuration="hybrid m=1 (single cluster)")
    assert shared["mean_messages"] == 0.0
    assert single_cluster["mean_rounds"] == 1.0
