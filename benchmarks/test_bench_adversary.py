"""Benchmarks of the adversary subsystem and its no-adversary overhead gate.

The fault-injection hooks (PR: adversary subsystem) touch the kernel's three
hottest paths: the run loop (one ``is None`` check per event), message sends
(one branch) and delivery/resume handling (one ``paused`` attribute check).
The contract is that a kernel with *no* adversary installed regresses less
than 2% against the pre-hook kernel.  Since the pre-hook code no longer
exists, the gate reconstructs it: pre-hook versions of ``run``, ``_do_send``,
``_handle_delivery`` and ``_handle_resume`` (verbatim copies minus the
adversary/paused branches) are monkeypatched onto the kernel class and timed
against the real ones on the same workload.

Like every timing gate in this repo, the hard assert is live only in
dedicated benchmark runs (``make bench``, i.e. ``--benchmark-only``) with
at least 4 usable CPUs; plain CI executions only smoke the code paths.
"""

import heapq
import statistics
import time

import pytest

from repro.adversary import build_scenario, scenario_names
from repro.cluster.topology import ClusterTopology
from repro.harness.runner import ExperimentConfig, run_consensus
from repro.sim.events import MessageDelivery
from repro.sim.kernel import RunStatus, SimConfig, SimulationKernel
from repro.sim.process import ProcessState

TOPOLOGY = ClusterTopology.figure1_right()
#: Timing-gate knobs: paired interleaved rounds of several runs each, best
#: round kept per variant -- repeatability beats raw sample counts here.
ROUNDS = 9
RUNS_PER_ROUND = 4
OVERHEAD_LIMIT = 1.02


# --------------------------------------------------------------- pre-hook kernel
def _prehook_run(self):
    """The event loop exactly as it was before the adversary hook."""
    if not self._processes:
        raise RuntimeError("no processes registered")
    queue = self._queue
    trace = self.trace
    max_time = self.config.max_time
    while queue:
        entry = heapq.heappop(queue)
        if entry.time > max_time:
            self.now = max_time
            return self._result(RunStatus.TIMEOUT)
        if entry.time > self.now:
            self.now = entry.time
        self.events_processed += 1
        if trace.enabled:
            from repro.sim.events import describe

            trace.record(self.now, "event", self._event_pid(entry.event), describe(entry.event))
        self._dispatch(entry.event)
        if self._all_settled():
            break
    return self._result(self._final_status())


def _prehook_do_send(self, proc, effect):
    """Message send without the adversary branch."""
    if self._network is None:
        raise RuntimeError("no network attached; cannot handle SendEffect")
    message = self._network.prepare(
        sender=proc.pid, dest=effect.dest, payload=effect.payload, time=self.now
    )
    delay = self._network.sample_delay(sender=proc.pid, dest=effect.dest)
    if self.trace.enabled:
        self.trace.record(self.now, "send", proc.pid, f"to={effect.dest} {effect.payload!r}")
    self._schedule(self.now + delay, MessageDelivery(pid=effect.dest, message=message))
    self._resume_later(proc.pid, None, self.config.local_step_delay)


def _prehook_handle_resume(self, event):
    """Step resume without the paused check."""
    proc = self._processes[event.pid]
    if proc.state.is_terminal():
        return
    self._advance(proc, event.value)


def _prehook_handle_delivery(self, event):
    """Message delivery without the paused check."""
    proc = self._processes[event.pid]
    if proc.state is ProcessState.CRASHED:
        self.dropped_deliveries += 1
        return
    proc.deliver(event.message)
    if self._network is not None:
        self._network.record_delivery(event.message)
    if proc.state is ProcessState.BLOCKED:
        result = proc.check_wait()
        if result is not None:
            proc.wait_predicate = None
            proc.state = ProcessState.READY
            self._resume_later(proc.pid, result, self.config.local_step_delay)


_PREHOOK_PATCHES = {
    "run": _prehook_run,
    "_do_send": _prehook_do_send,
    "_handle_resume": _prehook_handle_resume,
    "_handle_delivery": _prehook_handle_delivery,
}


# The per-instance handler tables are built in ``__init__`` from the current
# class attributes, so patching the class before instantiating kernels (which
# ``_workload`` does on every call) re-binds the dispatch tables too.
def _workload():
    """One deterministic consensus run dominated by kernel event handling."""
    config = ExperimentConfig(
        topology=TOPOLOGY, algorithm="hybrid-local-coin", proposals="split", seed=5
    )
    result = run_consensus(config)
    assert result.terminated
    return result


def _time_workload():
    start = time.perf_counter()
    for _ in range(RUNS_PER_ROUND):
        _workload()
    return time.perf_counter() - start


# -------------------------------------------------------------------- the gate
def test_no_adversary_hot_path_overhead_under_2_percent(strict_timing):
    """Hooked kernel vs reconstructed pre-hook kernel on the same workload.

    Rounds are interleaved (hooked, stripped, hooked, ...) so slow drifts of
    the host hit both variants equally; the best round of each side is
    compared, which is the most noise-robust point estimate for a "how fast
    can this go" question.
    """
    hooked_times, stripped_times = [], []
    _workload()  # warm-up (imports, allocator, branch caches)
    for _ in range(ROUNDS if strict_timing else 1):
        hooked_times.append(_time_workload())
        with pytest.MonkeyPatch.context() as patcher:
            for name, fn in _PREHOOK_PATCHES.items():
                patcher.setattr(SimulationKernel, name, fn)
            stripped_times.append(_time_workload())

    if not strict_timing:
        pytest.skip(
            "timing gate runs only under --benchmark-only with >= 4 usable CPUs "
            f"(smoke: hooked {hooked_times[0]:.4f}s, stripped {stripped_times[0]:.4f}s)"
        )
    hooked, stripped = min(hooked_times), min(stripped_times)
    overhead = hooked / stripped
    assert overhead < OVERHEAD_LIMIT, (
        f"no-adversary kernel hot path regressed {overhead:.4f}x vs the pre-hook "
        f"kernel (limit {OVERHEAD_LIMIT}x): hooked best {hooked:.4f}s over "
        f"{statistics.median(hooked_times):.4f}s median, stripped best {stripped:.4f}s"
    )


def test_prehook_reconstruction_is_behaviourally_identical():
    """The stripped kernel must produce the same runs, or the gate is fiction."""
    hooked = _workload()
    with pytest.MonkeyPatch.context() as patcher:
        for name, fn in _PREHOOK_PATCHES.items():
            patcher.setattr(SimulationKernel, name, fn)
        stripped = _workload()
    assert hooked.sim_result.decisions == stripped.sim_result.decisions
    assert hooked.sim_result.end_time == stripped.sim_result.end_time
    assert hooked.metrics.events_processed == stripped.metrics.events_processed


# --------------------------------------------------------------- scenario costs
@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_bench_scenario_run(benchmark, name):
    """Throughput of one consensus run under each library scenario."""
    config = ExperimentConfig(
        topology=ClusterTopology.even_split(6, 3),
        algorithm="hybrid-local-coin",
        proposals="split",
        seed=7,
        sim=SimConfig(max_rounds=30, max_time=5e4),
        scenario=build_scenario(name, n=6, intensity=0.3),
    )

    def run():
        result = run_consensus(config)
        assert result.report.agreement and result.report.validity
        return result

    benchmark(run)
