"""Benchmarks of the adversary subsystem and its no-adversary overhead gate.

The fault-injection hooks (PR: adversary subsystem) touch the kernel's three
hottest paths: the run loop (one ``is None`` check per event), message sends
(one branch) and delivery/resume handling (one ``paused`` attribute check).
The contract is that a kernel with *no* adversary installed regresses less
than 2% against the pre-hook kernel.  Since the pre-hook code no longer
exists, the gate reconstructs it: pre-hook versions of ``run``, ``_do_send``,
``_handle_delivery`` and ``_handle_resume`` (verbatim copies of the current
flat-tuple hot path minus the adversary/paused branches) are monkeypatched
onto the kernel class and timed against the real ones on the same workload.

Like every timing gate in this repo, the hard assert is live only in
dedicated benchmark runs (``make bench``, i.e. ``--benchmark-only``) with
at least 4 usable CPUs; plain CI executions only smoke the code paths.
"""

import statistics
import time
from heapq import heappop, heappush

import pytest

from repro.adversary import build_scenario, scenario_names
from repro.cluster.topology import ClusterTopology
from repro.harness.runner import ExperimentConfig, run_consensus
from repro.sim.context import RoundLimitExceeded, SendEffect, WaitEffect
from repro.sim.events import EventKind, describe_entry
from repro.sim.kernel import RunStatus, SimConfig, SimulationKernel
from repro.sim.process import ProcessState

TOPOLOGY = ClusterTopology.figure1_right()
#: Timing-gate knobs: paired interleaved rounds of several runs each, best
#: round kept per variant -- repeatability beats raw sample counts here.
ROUNDS = 9
RUNS_PER_ROUND = 4
OVERHEAD_LIMIT = 1.02

_RESUME = int(EventKind.STEP_RESUME)
_DELIVERY = int(EventKind.MESSAGE_DELIVERY)


# --------------------------------------------------------------- pre-hook kernel
def _prehook_run(self):
    """The mega-inlined event loop exactly as it would be without the hooks.

    A verbatim copy of ``SimulationKernel.run`` minus the adversary
    consultation block and the ``paused`` branches (which exist only for the
    adversary's pause/recover faults).  Must be kept in sync with the real
    loop: ``test_prehook_reconstruction_is_behaviourally_identical`` below
    and the overhead gate are only meaningful while the two differ by
    exactly those branches.
    """
    if not self._processes:
        raise RuntimeError("no processes registered")
    queue = self._queue
    trace = self.trace
    trace_enabled = trace.enabled
    handlers = self._handlers
    processes = self._processes
    if set(processes) == set(range(len(processes))):
        processes = [processes[index] for index in range(len(processes))]
    network = self._network
    net_stats = network.stats if network is not None else None
    sched_random = self._sched_random
    effect_handlers = self._effect_handlers
    config = self.config
    max_time = config.max_time
    local_step_delay = config.local_step_delay
    jitter = config.scheduling_jitter
    ready = ProcessState.READY
    blocked = ProcessState.BLOCKED
    crashed = ProcessState.CRASHED
    processed = 0
    try:
        while queue:
            time, sequence, kind, pid, payload = heappop(queue)
            if time > max_time:
                self.now = max_time
                self.events_processed += processed
                processed = 0
                return self._result(RunStatus.TIMEOUT)
            if time > self.now:
                self.now = time
            processed += 1
            if trace_enabled:
                trace.record(self.now, "event", pid, describe_entry(kind, pid, payload))
            if kind == _DELIVERY:
                proc = processes[pid]
                state = proc.state
                if state is crashed:
                    self.dropped_deliveries += 1
                    continue
                proc.mailbox.append(payload)
                if net_stats is not None:
                    net_stats.messages_delivered += 1
                    net_stats.delivered_to_process[pid] += 1
                if state is blocked:
                    result = proc.wait_predicate(proc.mailbox)
                    if result is not None:
                        proc.wait_predicate = None
                        proc.state = ready
                        if jitter > 0:
                            time = self.now + local_step_delay + sched_random() * jitter
                        else:
                            time = self.now + local_step_delay
                        self._sequence += 1
                        heappush(queue, (time, self._sequence, _RESUME, pid, result))
                continue
            if kind == _RESUME:
                proc = processes[pid]
                state = proc.state
                if state is not ready and state is not blocked:
                    continue
                proc.stats.steps += 1
                try:
                    effect = proc.generator.send(payload)
                except StopIteration as stop:
                    proc.decision = stop.value
                    proc.decision_time = self.now
                    self._settle(
                        proc,
                        ProcessState.DECIDED if stop.value is not None else ProcessState.HALTED,
                    )
                    if stop.value is None:
                        proc.halt_reason = "returned None"
                    if trace_enabled:
                        trace.record(self.now, "decide", pid, repr(stop.value))
                    if self._live == 0:
                        break
                    continue
                except RoundLimitExceeded as exceeded:
                    self._settle(proc, ProcessState.HALTED)
                    proc.halt_reason = str(exceeded)
                    if trace_enabled:
                        trace.record(self.now, "halt", pid, proc.halt_reason)
                    if self._live == 0:
                        break
                    continue
                cls = type(effect)
                if cls is SendEffect:
                    if network is None:
                        raise RuntimeError("no network attached; cannot handle SendEffect")
                    dest = effect.dest
                    now = self.now
                    message, delay = network.transmit(pid, dest, effect.payload, now)
                    if trace_enabled:
                        trace.record(now, "send", pid, f"to={dest} {effect.payload!r}")
                    sequence = self._sequence + 2
                    self._sequence = sequence
                    heappush(queue, (now + delay, sequence - 1, _DELIVERY, dest, message))
                    if jitter > 0:
                        time = now + local_step_delay + sched_random() * jitter
                    else:
                        time = now + local_step_delay
                    heappush(queue, (time, sequence, _RESUME, pid, None))
                elif cls is WaitEffect:
                    result = effect.predicate(proc.mailbox)
                    if result is not None:
                        if jitter > 0:
                            time = self.now + local_step_delay + sched_random() * jitter
                        else:
                            time = self.now + local_step_delay
                        self._sequence += 1
                        heappush(queue, (time, self._sequence, _RESUME, pid, result))
                    else:
                        proc.state = blocked
                        proc.wait_predicate = effect.predicate
                        if trace_enabled:
                            trace.record(self.now, "block", pid, "waiting on messages")
                else:
                    handler = effect_handlers.get(cls) or self._resolve_effect_handler(effect)
                    if handler is None:
                        raise TypeError(
                            f"process {pid} yielded {effect!r}, which is not a recognised effect"
                        )
                    handler(proc, effect)
                    if self._live == 0:
                        break
                continue
            handlers[kind](pid, payload)
            if self._live == 0:
                break
    finally:
        self.events_processed += processed
    return self._result(self._final_status())


def _prehook_do_send(self, proc, effect):
    """The table-path message send without the adversary branch."""
    network = self._network
    if network is None:
        raise RuntimeError("no network attached; cannot handle SendEffect")
    pid = proc.pid
    dest = effect.dest
    now = self.now
    message, delay = network.transmit(pid, dest, effect.payload, now)
    if self.trace.enabled:
        self.trace.record(now, "send", pid, f"to={dest} {effect.payload!r}")
    self._sequence += 1
    heappush(self._queue, (now + delay, self._sequence, _DELIVERY, dest, message))
    config = self.config
    jitter = config.scheduling_jitter
    if jitter > 0:
        time = self.now + config.local_step_delay + self._sched_random() * jitter
    else:
        time = self.now + config.local_step_delay
    self._sequence += 1
    heappush(self._queue, (time, self._sequence, _RESUME, pid, None))


def _prehook_handle_resume(self, pid, payload):
    """The table-path step resume without the paused check."""
    proc = self._processes[pid]
    state = proc.state
    if state is not ProcessState.READY and state is not ProcessState.BLOCKED:
        return
    self._advance(proc, payload)


def _prehook_handle_delivery(self, pid, payload):
    """The table-path message delivery without the paused check."""
    proc = self._processes[pid]
    if proc.state is ProcessState.CRASHED:
        self.dropped_deliveries += 1
        return
    proc.mailbox.append(payload)
    network = self._network
    if network is not None:
        stats = network.stats
        stats.messages_delivered += 1
        stats.delivered_to_process[pid] += 1
    if proc.state is ProcessState.BLOCKED:
        result = proc.wait_predicate(proc.mailbox)
        if result is not None:
            proc.wait_predicate = None
            proc.state = ProcessState.READY
            self._resume_later(pid, result, self.config.local_step_delay)


_PREHOOK_PATCHES = {
    "run": _prehook_run,
    "_do_send": _prehook_do_send,
    "_handle_resume": _prehook_handle_resume,
    "_handle_delivery": _prehook_handle_delivery,
}


# The per-instance handler tables are built in ``__init__`` from the current
# class attributes, so patching the class before instantiating kernels (which
# ``_workload`` does on every call) re-binds the dispatch tables too.
def _workload():
    """One deterministic consensus run dominated by kernel event handling."""
    config = ExperimentConfig(
        topology=TOPOLOGY, algorithm="hybrid-local-coin", proposals="split", seed=5
    )
    result = run_consensus(config)
    assert result.terminated
    return result


def _time_workload():
    start = time.perf_counter()
    for _ in range(RUNS_PER_ROUND):
        _workload()
    return time.perf_counter() - start


# -------------------------------------------------------------------- the gate
@pytest.mark.timing
def test_no_adversary_hot_path_overhead_under_2_percent(strict_timing):
    """Hooked kernel vs reconstructed pre-hook kernel on the same workload.

    Rounds are interleaved (hooked, stripped, hooked, ...) so slow drifts of
    the host hit both variants equally; the best round of each side is
    compared, which is the most noise-robust point estimate for a "how fast
    can this go" question.
    """
    hooked_times, stripped_times = [], []
    _workload()  # warm-up (imports, allocator, branch caches)
    for _ in range(ROUNDS if strict_timing else 1):
        hooked_times.append(_time_workload())
        with pytest.MonkeyPatch.context() as patcher:
            for name, fn in _PREHOOK_PATCHES.items():
                patcher.setattr(SimulationKernel, name, fn)
            stripped_times.append(_time_workload())

    if not strict_timing:
        pytest.skip(
            "timing gate runs only under --benchmark-only with >= 4 usable CPUs "
            f"(smoke: hooked {hooked_times[0]:.4f}s, stripped {stripped_times[0]:.4f}s)"
        )
    hooked, stripped = min(hooked_times), min(stripped_times)
    overhead = hooked / stripped
    assert overhead < OVERHEAD_LIMIT, (
        f"no-adversary kernel hot path regressed {overhead:.4f}x vs the pre-hook "
        f"kernel (limit {OVERHEAD_LIMIT}x): hooked best {hooked:.4f}s over "
        f"{statistics.median(hooked_times):.4f}s median, stripped best {stripped:.4f}s"
    )


def test_prehook_reconstruction_is_behaviourally_identical():
    """The stripped kernel must produce the same runs, or the gate is fiction."""
    hooked = _workload()
    with pytest.MonkeyPatch.context() as patcher:
        for name, fn in _PREHOOK_PATCHES.items():
            patcher.setattr(SimulationKernel, name, fn)
        stripped = _workload()
    assert hooked.sim_result.decisions == stripped.sim_result.decisions
    assert hooked.sim_result.end_time == stripped.sim_result.end_time
    assert hooked.metrics.events_processed == stripped.metrics.events_processed


# --------------------------------------------------------------- scenario costs
@pytest.mark.parametrize("name", sorted(scenario_names()))
def test_bench_scenario_run(benchmark, name):
    """Throughput of one consensus run under each library scenario."""
    config = ExperimentConfig(
        topology=ClusterTopology.even_split(6, 3),
        algorithm="hybrid-local-coin",
        proposals="split",
        seed=7,
        sim=SimConfig(max_rounds=30, max_time=5e4),
        scenario=build_scenario(name, n=6, intensity=0.3),
    )

    def run():
        result = run_consensus(config)
        assert result.report.agreement and result.report.validity
        return result

    benchmark(run)
