"""Benchmark E8 — Figure 2 domain reconstruction and the scalability trade-off sweep."""

from repro.experiments import e8_scalability
from repro.experiments.common import default_seeds

SEEDS = default_seeds(4)


def test_bench_e8_scalability(benchmark):
    report = benchmark.pedantic(
        lambda: e8_scalability.run(seeds=SEEDS, sizes=(4, 8, 12)),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(report.format())
    assert report.passed
    assert e8_scalability.figure2_domain_matches()
    # The trade-off: the all-shared-memory extreme uses fewer messages and
    # rounds than the all-message-passing extreme at every size.
    for n in (4, 8, 12):
        single = report.row_where(n=n, layout="m=1")
        singleton = report.row_where(n=n, layout="m=n")
        assert single["mean_messages"] <= singleton["mean_messages"]
        assert single["mean_rounds"] <= singleton["mean_rounds"]
