"""Benchmark E3 — "one for all and all for one": lone survivors represent their clusters."""

from repro.experiments import e3_one_for_all
from repro.experiments.common import default_seeds

SEEDS = default_seeds(5)


def test_bench_e3_one_for_all(benchmark):
    report = benchmark.pedantic(
        lambda: e3_one_for_all.run(seeds=SEEDS, n=9, m=3), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(report.format())
    assert report.passed
    lone = [row for row in report.rows if row["scenario"] == "one-survivor-per-cluster"]
    assert all(row["termination_rate"] == 1.0 for row in lone)
    # Six of nine processes are crashed in the survivor scenario.
    assert all(row["crashed"] == 6 for row in lone)
