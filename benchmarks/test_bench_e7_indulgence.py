"""Benchmark E7 — indulgence: safety holds under termination-breaking crash patterns."""

from repro.experiments import e7_indulgence
from repro.experiments.common import default_seeds

SEEDS = default_seeds(8)


def test_bench_e7_indulgence(benchmark):
    report = benchmark.pedantic(
        lambda: e7_indulgence.run(seeds=SEEDS, n=8, m=4, round_cap=20),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(report.format())
    assert report.passed
    assert all(row["safety_rate"] == 1.0 for row in report.rows)
    assert all(row["termination_rate"] == 0.0 or not row["termination_expected"] for row in report.rows)
