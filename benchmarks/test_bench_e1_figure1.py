"""Benchmark E1 — Figure 1: both cluster decompositions of n=7, m=3.

Regenerates the experiment report for the paper's Figure 1 decompositions
(rows: decomposition x algorithm, columns: termination rate, rounds,
messages, shared-memory operations) and times one full report generation.
"""

from repro.experiments import e1_figure1
from repro.experiments.common import default_seeds

SEEDS = default_seeds(5)


def test_bench_e1_figure1(benchmark):
    report = benchmark.pedantic(
        lambda: e1_figure1.run(seeds=SEEDS), rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    print(report.format())
    assert report.passed
    assert len(report.rows) == 4
    # Both decompositions always reach a decision for both algorithms.
    assert all(row["termination_rate"] == 1.0 for row in report.rows)
