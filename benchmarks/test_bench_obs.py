"""The dormant-observability overhead gate on the n=64 kernel flood.

The observability layer (PR: sweep telemetry) touches the simulation side
in three places: ``SimulationKernel._result`` gained the ``trace_sink``
dump (one ``is None`` check per *run*), and ``ProcessContext`` gained the
``round``/``phase`` span markers (one ``trace.enabled`` check per call
when tracing is off).  The worker telemetry registry lives entirely in
the sweep coordinator -- it is never on the kernel path -- so the kernel
flood is the whole dormant surface.

The contract mirrors the adversary-hook gate
(``benchmarks/test_bench_adversary.py``): a kernel with tracing *off*
and no sink must regress less than 2% against the pre-observability
code.  Since that code no longer exists, the gate reconstructs it --
verbatim copies of ``_result`` and ``mark_round`` minus the obs
branches, and a bare no-op where ``mark_phase`` did not yet exist -- and
times both variants on a marker-annotated flood at n=64.

Like every timing gate in this repo, the hard assert is live only in
dedicated benchmark runs (``make bench``, i.e. ``--benchmark-only``)
with at least 4 usable CPUs; plain CI executions only smoke the paths.
"""

import gc
import statistics
import time

import pytest

from benchmarks.test_bench_micro import FLOOD_N, FLOOD_ROUNDS
from repro.core.base import PhaseMessage
from repro.network.transport import Network
from repro.sim.context import ProcessContext, RoundLimitExceeded
from repro.sim.kernel import RunStatus, SimConfig, SimulationKernel
from repro.sim.rng import RandomSource

#: Timing-gate knobs: paired interleaved rounds, best round kept per variant.
ROUNDS = 9
RUNS_PER_ROUND = 2
OVERHEAD_LIMIT = 1.02


# ------------------------------------------------------- pre-obs reconstruction
def _preobs_result(self, status):
    """``SimulationKernel._result`` exactly as it was without ``trace_sink``.

    A verbatim copy minus the sink dump check.  Must be kept in sync with
    the real method: ``test_preobs_reconstruction_is_behaviourally_identical``
    below and the overhead gate are only meaningful while the two differ by
    exactly that block.
    """
    from repro.sim.kernel import SimulationResult

    decisions = {
        pid: proc.decision
        for pid, proc in self._processes.items()
        if proc.has_decided
    }
    decision_times = {
        pid: proc.decision_time
        for pid, proc in self._processes.items()
        if proc.has_decided and proc.decision_time is not None
    }
    correct = {pid for pid, proc in self._processes.items() if proc.is_correct}
    crashed = {pid for pid, proc in self._processes.items() if not proc.is_correct}
    non_terminated = {pid for pid in correct if pid not in decisions}
    rounds = {pid: proc.context.stats.rounds for pid, proc in self._processes.items()}
    stats = {pid: proc.context.stats for pid, proc in self._processes.items()}
    return SimulationResult(
        status=status,
        decisions=decisions,
        decision_times=decision_times,
        correct=correct,
        crashed=crashed,
        non_terminated=non_terminated,
        rounds=rounds,
        end_time=self.now,
        events_processed=self.events_processed,
        process_stats=stats,
    )


def _preobs_mark_round(self, round_number):
    """``ProcessContext.mark_round`` without the span-marker branch."""
    self.stats.rounds = max(self.stats.rounds, round_number)
    kernel = self._kernel
    limit = kernel.config.max_rounds
    if limit is not None and round_number > limit:
        raise RoundLimitExceeded(self.pid, round_number, limit)


def _preobs_mark_phase(self, name):
    """Pre-obs there was no ``mark_phase``; absence costs one bare call."""


_PREOBS_KERNEL_PATCHES = {"_result": _preobs_result}
_PREOBS_CONTEXT_PATCHES = {
    "mark_round": _preobs_mark_round,
    "mark_phase": _preobs_mark_phase,
}


def _patch_preobs(patcher):
    for name, fn in _PREOBS_KERNEL_PATCHES.items():
        patcher.setattr(SimulationKernel, name, fn)
    for name, fn in _PREOBS_CONTEXT_PATCHES.items():
        patcher.setattr(ProcessContext, name, fn)


# ------------------------------------------------------------------- workload
def _marker_flood(ctx):
    """The n=64 all-to-all flood, annotated the way algorithm code would be.

    Identical message mix to ``benchmarks.test_bench_micro._flood`` plus
    one ``mark_round`` and one ``mark_phase`` per round -- the dormant
    markers whose disabled cost the gate bounds.
    """
    for round_number in range(FLOOD_ROUNDS):
        ctx.mark_round(round_number + 1)
        ctx.mark_phase("broadcast")
        message = PhaseMessage(
            tag="bench", round_number=round_number, phase=1, est=round_number % 2
        )
        yield from ctx.broadcast(message)
        need = (round_number + 1) * FLOOD_N
        yield from ctx.wait_until(lambda mailbox, need=need: True if len(mailbox) >= need else None)
    return 1


def _run_marker_flood():
    """One measured flood run: returns the simulation result and seconds.

    Only ``kernel.run()`` is timed, with collection forced beforehand and
    the collector disabled inside the timed region (same discipline as the
    kernel-throughput gate in ``test_bench_micro``).
    """
    rng = RandomSource(42)
    kernel = SimulationKernel(config=SimConfig(), rng=rng)
    kernel.attach_network(Network(FLOOD_N, rng=rng))
    for pid in range(FLOOD_N):
        kernel.add_process(pid, _marker_flood)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = kernel.run()
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    assert result.status is RunStatus.DECIDED
    assert not kernel.trace.enabled  # the gate measures the *dormant* path
    return result, wall


def _time_floods():
    total = 0.0
    for _ in range(RUNS_PER_ROUND):
        total += _run_marker_flood()[1]
    return total


# -------------------------------------------------------------------- the gate
@pytest.mark.timing
def test_dormant_observability_overhead_under_2_percent(strict_timing):
    """Current kernel vs reconstructed pre-obs kernel on the marker flood.

    Rounds are interleaved (current, stripped, current, ...) so slow host
    drifts hit both variants equally; the best round of each side is
    compared -- the most noise-robust estimate for a "how fast can this
    go" question.
    """
    current_times, stripped_times = [], []
    _run_marker_flood()  # warm-up (imports, allocator, branch caches)
    for _ in range(ROUNDS if strict_timing else 1):
        current_times.append(_time_floods())
        with pytest.MonkeyPatch.context() as patcher:
            _patch_preobs(patcher)
            stripped_times.append(_time_floods())

    if not strict_timing:
        pytest.skip(
            "timing gate runs only under --benchmark-only with >= 4 usable CPUs "
            f"(smoke: current {current_times[0]:.4f}s, stripped {stripped_times[0]:.4f}s)"
        )
    current, stripped = min(current_times), min(stripped_times)
    overhead = current / stripped
    assert overhead < OVERHEAD_LIMIT, (
        f"dormant observability overhead {overhead:.4f}x vs the pre-obs kernel "
        f"(limit {OVERHEAD_LIMIT}x): current best {current:.4f}s over "
        f"{statistics.median(current_times):.4f}s median, stripped best {stripped:.4f}s"
    )


def test_preobs_reconstruction_is_behaviourally_identical():
    """The stripped kernel must produce the same runs, or the gate is fiction."""
    current, _ = _run_marker_flood()
    with pytest.MonkeyPatch.context() as patcher:
        _patch_preobs(patcher)
        stripped, _ = _run_marker_flood()
    assert current.decisions == stripped.decisions
    assert current.end_time == stripped.end_time
    assert current.events_processed == stripped.events_processed
    assert current.rounds == stripped.rounds


def test_dormant_flood_records_and_writes_nothing(tmp_path):
    """With tracing off and no sink, the flood leaves zero observability residue."""
    result, _ = _run_marker_flood()
    assert result.events_processed > 0
    sink = tmp_path / "trace.jsonl"
    rng = RandomSource(42)
    kernel = SimulationKernel(config=SimConfig(), rng=rng)
    kernel.attach_network(Network(FLOOD_N, rng=rng))
    for pid in range(FLOOD_N):
        kernel.add_process(pid, _marker_flood)
    kernel.run()
    assert len(kernel.trace) == 0
    assert not sink.exists()
