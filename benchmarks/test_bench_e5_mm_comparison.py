"""Benchmark E5 — hybrid model vs m&m model: shared-memory cost per phase (Section III-C)."""

from repro.experiments import e5_mm_comparison
from repro.experiments.common import default_seeds

SEEDS = default_seeds(4)


def test_bench_e5_mm_comparison(benchmark):
    report = benchmark.pedantic(
        lambda: e5_mm_comparison.run(seeds=SEEDS, sizes=(8, 12), cluster_counts=(2, 4)),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(report.format())
    assert report.passed
    for n in (8, 12):
        for m in (2, 4):
            hybrid = report.row_where(model="hybrid-local-coin", n=n, m=m)
            mm = report.row_where(model="mm-local-coin", n=n, m=m)
            # m objects per phase vs n objects per phase.
            assert hybrid["predicted_objects_per_phase"] == float(m)
            assert mm["predicted_objects_per_phase"] == float(n)
            assert hybrid["objects_per_phase"] < mm["objects_per_phase"]
            # 1 invocation per process per phase vs alpha_i + 1.
            assert hybrid["invocations_per_process_per_phase"] < mm["invocations_per_process_per_phase"]
