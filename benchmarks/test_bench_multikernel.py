"""Benchmark cooperative multi-kernel hosting against the serial baseline.

The tentpole gate (ISSUE 7): stepping K kernels cooperatively in one
process must not cost throughput versus running the same K kernels to
completion one after another -- equal total events, so the only difference
is the batch-boundary bookkeeping (a generator yield every
``DEFAULT_BATCH_EVENTS`` events plus slot rotation).  Bit-equality of the
interleaved results against the solo runs is asserted on every run; the
throughput bar is hard only under the shared ``strict_timing`` gate
(dedicated ``make bench`` run, >=4 usable CPUs), mirroring the kernel
hot-path gate in ``test_bench_micro.py``.

``test_bench_e8l_n1024_smoke`` is the acceptance smoke point: the E8L
n=1024 single-cluster run completes (and decides) under cooperative
execution in the CI benchmark lanes.
"""

import gc
import time

import pytest

from repro.cluster.topology import ClusterTopology
from repro.harness.runner import ExperimentConfig, prepare_consensus
from repro.sim.multikernel import run_cooperative

# --------------------------------------------------------------- gate knobs
#: Cooperative slots (and kernels) in the throughput comparison.
COOP_K = 6
#: Topology of each hosted run; n=16/m=2 keeps one round of the gate ~1s.
COOP_N = 16
#: Interleaved measurement rounds for the gate (best-of on each side).
GATE_ROUNDS = 8
#: The acceptance bar: coop throughput >= the single-kernel baseline at
#: equal total events.  Batch bookkeeping costs well under 1% (one yield
#: per 4096 events); the 3% slack below parity absorbs timer granularity
#: and allocator noise, nothing more.
GATE_MIN_RATIO = 0.97


def _configs():
    topology = ClusterTopology.even_split(COOP_N, 2)
    return [
        ExperimentConfig(topology=topology, proposals="split", seed=2000 + index)
        for index in range(COOP_K)
    ]


def _run_serial():
    """Run the K kernels to completion one after another (the baseline).

    Only kernel execution is timed: preparation allocates thousands of
    objects per run and is identical on both sides, so it stays outside the
    measured region, with collection forced beforehand and the collector
    disabled inside so churn from one side's setup is never billed to the
    other's run.
    """
    kernels = [prepare_consensus(config).kernel for config in _configs()]
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        results = [kernel.run() for kernel in kernels]
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    return results, wall


def _run_coop():
    """Host the same K kernels cooperatively in one scheduler."""
    kernels = [prepare_consensus(config).kernel for config in _configs()]
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        results = run_cooperative(kernels, width=COOP_K)
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    return results, wall


def _assert_bit_identical(solo, hosted):
    assert len(solo) == len(hosted) == COOP_K
    for alone, together in zip(solo, hosted):
        assert together.status is alone.status
        assert together.end_time == alone.end_time
        assert together.events_processed == alone.events_processed
        assert together.decisions == alone.decisions
        assert together.decision_times == alone.decision_times


@pytest.mark.timing
def test_bench_coop_throughput_gate(strict_timing):
    """Cooperative hosting >= single-kernel baseline at equal total events.

    Interleaved best-of-``GATE_ROUNDS`` runs on each side make the
    comparison robust to transient machine noise; the ``timing`` marker
    gives wall-clock flake one retry on top.  Bit-equality of every hosted
    result against its solo twin holds on every round, strict or not.
    """
    best = {"serial": float("inf"), "coop": float("inf")}
    for round_number in range(GATE_ROUNDS):
        serial_results, serial_wall = _run_serial()
        coop_results, coop_wall = _run_coop()
        best["serial"] = min(best["serial"], serial_wall)
        best["coop"] = min(best["coop"], coop_wall)
        _assert_bit_identical(serial_results, coop_results)
        if not strict_timing:
            break
    total_events = sum(result.events_processed for result in coop_results)
    ratio = best["serial"] / best["coop"]
    rate = total_events / best["coop"]
    if not strict_timing:
        pytest.skip(
            f"timing gate disabled (needs --benchmark-only and >=4 CPUs); "
            f"single-round ratio={ratio:.2f}x, {rate:,.0f} events/sec hosted"
        )
    assert ratio >= GATE_MIN_RATIO, (
        f"coop hosting at {ratio:.2f}x of the serial baseline, below the "
        f"{GATE_MIN_RATIO:.2f} gate (serial {best['serial']:.4f}s, coop "
        f"{best['coop']:.4f}s, {rate:,.0f} events/sec)"
    )


def test_bench_e8l_n1024_smoke(benchmark):
    """The E8L n=1024 acceptance point completes under cooperative hosting.

    One seed, single-cluster: ~3.2M events in one kernel.  Runs (without
    the timing harness) in bench-smoke too, so every CI push proves the
    large-n path stays alive, not just the nightly lane.
    """
    from repro.experiments.e8_scalability import plan_large
    from repro.harness.distributed import run_plan

    plan = plan_large(seeds=[1000], sizes=(1024,))
    assert [point.label for point in plan.points] == ["n=1024/m=1"]
    aggregates = benchmark.pedantic(
        lambda: run_plan(plan, exec_mode="coop"), rounds=1, iterations=1, warmup_rounds=0
    )
    aggregate = aggregates["n=1024/m=1"]
    assert aggregate.count == 1
    assert aggregate.decided_count == 1
    assert aggregate.safe_count == 1
