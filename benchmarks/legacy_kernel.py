"""A faithful reconstruction of the PRE-refactor simulation kernel.

The flat-hot-path refactor (see ``docs/performance.md``) rewrote the
kernel's event loop in place, so the original code no longer exists in the
tree to benchmark against.  This module rebuilds it verbatim from the
pre-refactor sources -- dataclass events wrapped in ``order=True``
``ScheduledEvent`` heap entries, frozen-dataclass effects and messages,
dict-based processes and contexts, type-keyed dict dispatch, a per-event
``all(...)`` quiescence scan, per-call ``DelayModel.sample`` draws and a
recursive ``payload_size`` walk per send -- so that
``benchmarks/test_bench_micro.py`` can measure the refactor's speedup as a
live, like-for-like comparison instead of trusting a stale recorded number.

Everything here subclasses the current public classes only to *reuse their
setup plumbing* (construction, RNG streams, result assembly); every member
the hot path touches is overridden with the pre-refactor implementation.
This code is a measurement baseline: do not "optimise" it, and do not use
it outside the benchmarks.
"""

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.network.message import payload_size
from repro.network.transport import Network
from repro.sim.context import ProcessContext
from repro.sim.events import (
    MessageDelivery,
    ProcessStart,
    ScheduledEvent,
    StepResume,
    describe,
    entry_event,
)
from repro.sim.kernel import RunStatus, SimulationKernel
from repro.sim.process import ProcessState


@dataclass(frozen=True)
class LegacySendEffect:
    """The pre-refactor frozen-dataclass send effect."""

    dest: int
    payload: Any


@dataclass(frozen=True)
class LegacyWaitEffect:
    """The pre-refactor frozen-dataclass wait effect."""

    predicate: Callable


@dataclass(frozen=True)
class LegacyMessage:
    """The pre-refactor frozen-dataclass message envelope."""

    sender: int
    dest: int
    payload: Any
    send_time: float = 0.0
    msg_id: int = 0


@dataclass
class LegacyProcessStats:
    """The pre-refactor dict-based per-process counters."""

    steps: int = 0
    messages_sent: int = 0
    sm_ops: int = 0
    waits: int = 0
    rounds: int = 0
    coin_flips: int = 0


class LegacyContext(ProcessContext):
    """Pre-refactor process context: dict-based, sub-generator broadcast."""

    def __init__(self, pid, kernel):
        self.pid = pid
        self._kernel = kernel
        self.stats = LegacyProcessStats()

    def send(self, dest, payload):
        self.stats.messages_sent += 1
        yield LegacySendEffect(dest=dest, payload=payload)

    def broadcast(self, payload, include_self=True):
        # The pre-refactor macro delegated to the send() sub-generator once
        # per destination (one extra generator frame per message).
        for dest in self._kernel.process_ids():
            if not include_self and dest == self.pid:
                continue
            yield from self.send(dest, payload)

    def wait_until(self, predicate):
        self.stats.waits += 1
        result = yield LegacyWaitEffect(predicate=predicate)
        return result


@dataclass
class LegacySimProcess:
    """Pre-refactor kernel-side process record (a plain dataclass)."""

    pid: int
    context: Any
    factory: Callable
    generator: Any = None
    state: ProcessState = ProcessState.READY
    mailbox: List[Any] = field(default_factory=list)
    wait_predicate: Optional[Callable] = None
    decision: Any = None
    decision_time: Optional[float] = None
    crash_time: Optional[float] = None
    halt_reason: Optional[str] = None
    started: bool = False
    paused: bool = False
    paused_backlog: List[Any] = field(default_factory=list)

    def start(self):
        self.generator = self.factory(self.context)
        self.started = True

    @property
    def is_correct(self):
        return self.state is not ProcessState.CRASHED

    @property
    def has_decided(self):
        return self.state is ProcessState.DECIDED

    def deliver(self, message):
        self.mailbox.append(message)

    def check_wait(self):
        if self.state is not ProcessState.BLOCKED or self.wait_predicate is None:
            return None
        return self.wait_predicate(self.mailbox)


class LegacyNetwork(Network):
    """Pre-refactor network: per-send validation, sizing and delay draws."""

    def prepare(self, sender, dest, payload, time):
        self._validate_pid(sender)
        self._validate_pid(dest)
        self._next_msg_id += 1
        message = LegacyMessage(
            sender=sender, dest=dest, payload=payload, send_time=time, msg_id=self._next_msg_id
        )
        self.stats.messages_sent += 1
        self.stats.bytes_sent += payload_size(payload)
        self.stats.sent_by_process[sender] += 1
        self.stats.sent_by_kind[type(payload).__name__] += 1
        return message

    def sample_delay(self, sender, dest):
        delay = self.delay_model.sample(self._rng)
        if sender == dest:
            delay *= self.self_delay_factor
        return delay


class LegacyKernel(SimulationKernel):
    """Pre-refactor event loop: ScheduledEvent heap, dict dispatch, O(n) scan."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._event_handlers = {
            ProcessStart: self._l_handle_start,
            StepResume: self._l_handle_resume,
            MessageDelivery: self._l_handle_delivery,
        }
        self._l_effect_handlers = {
            LegacySendEffect: self._l_do_send,
            LegacyWaitEffect: self._l_do_wait,
        }

    def add_process(self, pid, factory):
        context = LegacyContext(pid, self)
        proc = LegacySimProcess(pid=pid, context=context, factory=factory)
        self._processes[pid] = proc
        self._live += 1
        self._l_schedule(0.0, ProcessStart(pid=pid))
        return proc

    def _schedule(self, time, kind, pid, payload):
        # Route flat-entry scheduling from inherited plumbing back into
        # ScheduledEvent entries so the queue stays homogeneous.
        self._l_schedule(time, entry_event(kind, pid, payload))

    def _l_schedule(self, time, event):
        self._sequence += 1
        heapq.heappush(self._queue, ScheduledEvent(time=time, sequence=self._sequence, event=event))

    def _jitter(self):
        if self.config.scheduling_jitter <= 0:
            return 0.0
        return self._sched_rng.random() * self.config.scheduling_jitter

    def _l_resume_later(self, pid, value, delay):
        self._l_schedule(self.now + delay + self._jitter(), StepResume(pid=pid, value=value))

    def run(self):
        if not self._processes:
            raise RuntimeError("no processes registered")
        queue = self._queue
        trace = self.trace
        adversary = self._adversary
        max_time = self.config.max_time
        while queue:
            entry = heapq.heappop(queue)
            if entry.time > max_time:
                self.now = max_time
                return self._result(RunStatus.TIMEOUT)
            if entry.time > self.now:
                self.now = entry.time
            if adversary is not None:
                extra = adversary.defer(entry.event, self.now)
                if extra > 0.0:
                    self._l_schedule(self.now + extra, entry.event)
                    continue
            self.events_processed += 1
            if trace.enabled:
                trace.record(self.now, "event", self._event_pid(entry.event), describe(entry.event))
            self._dispatch(entry.event)
            if self._l_all_settled():
                break
        return self._result(self._final_status())

    @staticmethod
    def _event_pid(event):
        return getattr(event, "pid", None)

    def _dispatch(self, event):
        handler = self._event_handlers.get(type(event))
        if handler is None:
            raise TypeError(f"unknown event type: {event!r}")
        handler(event)

    def _l_all_settled(self):
        # The pre-refactor quiescence check: a full scan per event.
        return all(proc.state.is_terminal() for proc in self._processes.values())

    def _l_handle_start(self, event):
        proc = self._processes[event.pid]
        if proc.state is ProcessState.CRASHED:
            return
        proc.start()
        self._l_advance(proc, None)

    def _l_handle_resume(self, event):
        proc = self._processes[event.pid]
        if proc.state.is_terminal():
            return
        self._l_advance(proc, event.value)

    def _l_handle_delivery(self, event):
        proc = self._processes[event.pid]
        if proc.state is ProcessState.CRASHED:
            self.dropped_deliveries += 1
            return
        proc.deliver(event.message)
        if self._network is not None:
            self._network.record_delivery(event.message)
        if proc.state is ProcessState.BLOCKED:
            result = proc.check_wait()
            if result is not None:
                proc.wait_predicate = None
                proc.state = ProcessState.READY
                self._l_resume_later(proc.pid, result, self.config.local_step_delay)

    def _l_advance(self, proc, value):
        proc.context.stats.steps += 1
        try:
            effect = proc.generator.send(value)
        except StopIteration as stop:
            proc.decision = stop.value
            proc.decision_time = self.now
            proc.state = ProcessState.DECIDED if stop.value is not None else ProcessState.HALTED
            return
        handler = self._l_effect_handlers.get(type(effect))
        if handler is None:
            raise TypeError(f"unrecognised effect {effect!r}")
        handler(proc, effect)

    def _l_do_send(self, proc, effect):
        message = self._network.prepare(
            sender=proc.pid, dest=effect.dest, payload=effect.payload, time=self.now
        )
        delay = self._network.sample_delay(sender=proc.pid, dest=effect.dest)
        if self.trace.enabled:
            self.trace.record(self.now, "send", proc.pid, f"to={effect.dest} {effect.payload!r}")
        self._l_schedule(self.now + delay, MessageDelivery(pid=effect.dest, message=message))
        self._l_resume_later(proc.pid, None, self.config.local_step_delay)

    def _l_do_wait(self, proc, effect):
        result = effect.predicate(proc.mailbox)
        if result is not None:
            self._l_resume_later(proc.pid, result, self.config.local_step_delay)
            return
        proc.state = ProcessState.BLOCKED
        proc.wait_predicate = effect.predicate
