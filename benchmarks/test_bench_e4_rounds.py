"""Benchmark E4 — expected rounds to decision for Algorithms 2 and 3."""

from repro.experiments import e4_rounds
from repro.experiments.common import default_seeds

SEEDS = default_seeds(20)


def test_bench_e4_rounds(benchmark):
    report = benchmark.pedantic(
        lambda: e4_rounds.run(seeds=SEEDS, sizes=(6, 12), cluster_counts=(3,)),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(report.format())
    assert report.passed
    # Algorithm 2 on unanimous inputs: always exactly one round.
    for row in report.rows:
        if row["algorithm"] == "hybrid-local-coin" and row["proposals"].startswith("unanimous"):
            assert row["mean_rounds"] == 1.0
    # Algorithm 3 on unanimous inputs: geometric(1/2), expected ~2 rounds.
    common_unanimous = [
        row["mean_rounds"]
        for row in report.rows
        if row["algorithm"] == "hybrid-common-coin" and row["proposals"].startswith("unanimous")
    ]
    assert all(1.0 <= value <= 3.5 for value in common_unanimous)
