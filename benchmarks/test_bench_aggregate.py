"""Benchmark the worker-side aggregation pipeline against full-result IPC.

Two quantities, matching the acceptance criteria of the aggregation PR:

* **bytes over the pipe** -- what a worker ships back per run: the pickled
  :class:`RunSummary` must be under 10% of the pickled full ``RunResult``
  at the paper-scale system size (n=64);
* **wall clock** -- a >=200-repetition sweep in summary mode must produce
  the *identical* aggregate a full-result sweep produces (the sketch is
  exact below its capacity of 512) while never being slower.

Like the parallel-engine benchmark, the timing gate is live only in
dedicated benchmark runs (``make bench``, i.e. ``--benchmark-only``) on
hardware with at least 4 usable CPUs; the plain test suite and bench-smoke
runs use a smaller sweep and never flake on wall-clock numbers.
"""

import pickle

import pytest

from repro.cluster.topology import ClusterTopology
from repro.harness.aggregate import RunAggregate, SummaryReducer
from repro.harness.parallel import available_cpus
from repro.harness.runner import ExperimentConfig, run_consensus
from repro.harness.sweep import repeat

#: The system size the bytes-over-pipe criterion is stated at.
BYTES_N, BYTES_M = 64, 8
#: Sweep shape: repeats stays >=200 in every mode; the system size (and the
#: timing gate) scales up only in dedicated benchmark runs.
REPEATS = 200
PARALLEL_WORKERS = 4


def _config(n, m):
    return ExperimentConfig(
        topology=ClusterTopology.even_split(n, m),
        algorithm="hybrid-local-coin",
        proposals="split",
    )


def test_bench_aggregate_bytes_over_pipe():
    """Per-run IPC payload: summary < 10% of the full result at n=64."""
    reducer = SummaryReducer()
    full_bytes = summary_bytes = 0
    for index, seed in enumerate((1000, 1001, 1002)):
        result = run_consensus(_config(BYTES_N, BYTES_M).with_seed(seed))
        full_bytes += len(pickle.dumps(result))
        summary_bytes += len(pickle.dumps(reducer(result, index)))
    ratio = summary_bytes / full_bytes
    print()
    print(
        f"n={BYTES_N}: full-result IPC {full_bytes}B, summary IPC {summary_bytes}B "
        f"per {REPEATS} runs: {full_bytes * REPEATS // 3}B vs {summary_bytes * REPEATS // 3}B "
        f"(ratio {ratio:.3f})"
    )
    assert ratio < 0.10, f"summary payload is {ratio:.1%} of the full result, expected <10%"


# random_failure, not plain timing: the gate compares two measured paths,
# so it needs more headroom than a single rerun when the box is loaded.
@pytest.mark.random_failure(max_runs=3)
def test_bench_aggregate_sweep_throughput(benchmark, timed, strict_timing):
    # Smoke keeps the shape of the comparison (same repeat count, same
    # asserts modulo timing) on a size that stays fast on one core.
    n, m = (BYTES_N, BYTES_M) if strict_timing else (8, 2)
    samples = 2 if strict_timing else 1
    config = _config(n, m)
    seeds = range(REPEATS)

    full_results, full_seconds = benchmark.pedantic(
        lambda: timed(
            lambda: repeat(config, seeds, check=False, max_workers=PARALLEL_WORKERS, full_results=True)
        ),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    for _ in range(samples - 1):
        _, seconds = timed(
            lambda: repeat(config, seeds, check=False, max_workers=PARALLEL_WORKERS, full_results=True)
        )
        full_seconds = min(full_seconds, seconds)

    summary_aggregate, summary_seconds = timed(
        lambda: repeat(config, seeds, check=False, max_workers=PARALLEL_WORKERS)
    )
    for _ in range(samples - 1):
        aggregate, seconds = timed(
            lambda: repeat(config, seeds, check=False, max_workers=PARALLEL_WORKERS)
        )
        summary_seconds = min(summary_seconds, seconds)
        assert aggregate == summary_aggregate  # scheduling-independent, always

    speedup = full_seconds / max(summary_seconds, 1e-9)
    print()
    print(
        f"n={n} x {REPEATS} runs -- full results: {full_seconds:.3f}s  "
        f"summary mode: {summary_seconds:.3f}s  speedup: {speedup:.2f}x  "
        f"cores: {available_cpus()}"
    )

    # Identical statistics: with REPEATS below the sketch capacity the
    # summary-mode aggregate must equal, bit for bit, the aggregate computed
    # parent-side from the full results.
    reducer = SummaryReducer()
    full_aggregate = RunAggregate.from_summaries(
        reducer(result, index) for index, result in enumerate(full_results)
    )
    assert summary_aggregate == full_aggregate
    assert len(summary_aggregate) == REPEATS
    for metric in ("messages_sent", "rounds_max", "sm_ops", "decision_time_max"):
        assert summary_aggregate.mean(metric) == full_aggregate.mean(metric)
        assert summary_aggregate.percentile(metric, 90.0) == full_aggregate.percentile(metric, 90.0)

    if strict_timing:
        assert speedup >= 1.0, (
            f"summary mode should never be slower than full-result IPC, "
            f"got {speedup:.2f}x"
        )
