"""Benchmark E2 — the headline claim: consensus despite a crashed majority.

Regenerates the rows comparing the hybrid algorithms (which terminate with a
majority of processes crashed, thanks to a surviving majority-cluster member)
against the Ben-Or control (which stays safe but cannot terminate).
"""

from repro.experiments import e2_majority_crash
from repro.experiments.common import default_seeds

SEEDS = default_seeds(5)


def test_bench_e2_majority_crash(benchmark):
    report = benchmark.pedantic(
        lambda: e2_majority_crash.run(seeds=SEEDS, sizes=(7, 11), control_round_cap=25),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    print()
    print(report.format())
    assert report.passed
    hybrid_rows = [row for row in report.rows if row["algorithm"].startswith("hybrid")]
    control_rows = [row for row in report.rows if "control" in row["algorithm"]]
    assert all(row["termination_rate"] == 1.0 for row in hybrid_rows)
    assert all(row["crashed_majority"] for row in hybrid_rows)
    assert all(row["termination_rate"] == 0.0 and row["safety_rate"] == 1.0 for row in control_rows)
