"""Benchmark-session bootstrap (mirrors the top-level conftest).

Makes ``repro`` importable from a plain checkout and keeps the benchmark
suite runnable on its own (``pytest benchmarks/ --benchmark-only``).
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

try:  # pragma: no cover - trivial import probe
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(_SRC))
