"""Benchmark-session bootstrap (mirrors the top-level conftest).

Makes ``repro`` importable from a plain checkout, keeps the benchmark suite
runnable on its own (``pytest benchmarks/ --benchmark-only``), and hosts the
timing helpers shared by the benchmark files.
"""

import pathlib
import sys
import time

import pytest

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

try:  # pragma: no cover - trivial import probe
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    sys.path.insert(0, str(_SRC))


def pytest_configure(config):
    # Standalone-benchmark-run safety net: when pytest's rootdir is the
    # benchmarks directory itself the top-level conftest (which loads the
    # repro.harness.pytest_timing plugin) is not seen, so register the
    # marker here too to keep --strict-markers runs green.  Duplicate
    # registration under the normal rootdir is harmless.
    config.addinivalue_line(
        "markers",
        "timing: wall-clock-gated test; rerun once on failure unless REPRO_BENCH_STRICT=1 is set.",
    )
    config.addinivalue_line(
        "markers",
        "random_failure(max_runs=N): wall-clock-gated test retried up to N times; "
        "REPRO_BENCH_STRICT=1 disables every rerun.",
    )


@pytest.fixture
def timed():
    """``timed(fn) -> (value, seconds)``, for best-of-N wall-clock comparisons."""

    def _timed(callable_):
        start = time.perf_counter()
        value = callable_()
        return value, time.perf_counter() - start

    return _timed


@pytest.fixture
def strict_timing(benchmark, request):
    """Whether this benchmark's hard timing assert should be live.

    Timing gates are perf gates, not correctness gates: they are enforced
    only in dedicated benchmark runs (``make bench``, i.e.
    ``--benchmark-only``) on hardware with at least 4 usable CPUs
    (quota-aware via ``available_cpus``), so a loaded CI box running the
    plain suite can never flake on wall-clock numbers.
    """
    from repro.harness.parallel import available_cpus

    return (
        bool(request.config.getoption("--benchmark-only", default=False))
        and benchmark.enabled
        and available_cpus() >= 4
    )
