"""Micro-benchmarks of single consensus runs and substrate primitives.

These complement the experiment-level benchmarks with tighter timing of the
individual building blocks: one full consensus run per algorithm on a fixed
topology, one intra-cluster consensus-object invocation, and one simulated
all-to-all message exchange.
"""

import pytest

from repro.cluster.topology import ClusterTopology
from repro.harness.runner import ExperimentConfig, run_consensus
from repro.sharedmem.consensus_object import CASConsensusObject
from repro.sharedmem.threaded import run_threaded_consensus

TOPOLOGY = ClusterTopology.figure1_right()


@pytest.mark.parametrize(
    "algorithm",
    ["hybrid-local-coin", "hybrid-common-coin", "ben-or", "mp-common-coin", "mm-local-coin"],
)
def test_bench_single_run(benchmark, algorithm):
    config = ExperimentConfig(topology=TOPOLOGY, algorithm=algorithm, proposals="split", seed=5)

    def run():
        result = run_consensus(config)
        result.report.raise_on_violation()
        return result

    result = benchmark(run)
    assert result.terminated


def test_bench_shared_memory_baseline(benchmark):
    topology = ClusterTopology.single_cluster(7)
    config = ExperimentConfig(topology=topology, algorithm="shared-memory", proposals="split", seed=5)
    result = benchmark(lambda: run_consensus(config))
    assert result.terminated
    assert result.metrics.messages_sent == 0


def test_bench_cas_consensus_object(benchmark):
    from tests.helpers import SyncContext, drive

    def one_instance():
        obj = CASConsensusObject("bench", members={0, 1, 2, 3})
        return [drive(obj.propose(SyncContext(pid=pid), pid % 2)) for pid in range(4)]

    decisions = benchmark(one_instance)
    assert len(set(decisions)) == 1


def test_bench_threaded_consensus(benchmark):
    proposals = {pid: pid % 2 for pid in range(8)}
    decisions = benchmark(lambda: run_threaded_consensus(proposals))
    assert len(set(decisions.values())) == 1
