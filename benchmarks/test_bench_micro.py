"""Micro-benchmarks of single consensus runs and substrate primitives.

These complement the experiment-level benchmarks with tighter timing of the
individual building blocks: one full consensus run per algorithm on a fixed
topology, one intra-cluster consensus-object invocation, one simulated
all-to-all message exchange, and the kernel hot-path gate: a live
legacy-vs-refactored event-throughput comparison at n=64 (see
``benchmarks/legacy_kernel.py`` and ``docs/performance.md``).
"""

import gc
import time

import pytest

from benchmarks.legacy_kernel import LegacyKernel, LegacyNetwork
from repro.cluster.topology import ClusterTopology
from repro.core.base import PhaseMessage
from repro.harness.runner import ExperimentConfig, run_consensus
from repro.network.transport import Network
from repro.sharedmem.consensus_object import CASConsensusObject
from repro.sharedmem.threaded import run_threaded_consensus
from repro.sim.kernel import RunStatus, SimConfig, SimulationKernel
from repro.sim.rng import RandomSource

TOPOLOGY = ClusterTopology.figure1_right()

# ----------------------------------------------------------- kernel hot path
#: Process count of the kernel-throughput flood (the ISSUE 6 gate is "≥5x
#: single-kernel event throughput at n=64").
FLOOD_N = 64
#: Broadcast-and-wait rounds per flood; at n=64 this yields 33 088 events.
FLOOD_ROUNDS = 4
#: Interleaved measurement rounds for the speedup gate (best-of on each side).
GATE_ROUNDS = 12
#: The acceptance bar: refactored kernel ≥5x the pre-refactor event rate.
GATE_SPEEDUP = 5.0


def _flood(ctx):
    """All-to-all broadcast rounds: the kernel's resume/send/delivery mix.

    Each round broadcasts one :class:`PhaseMessage` (a realistic payload:
    the legacy network pays the recursive ``payload_size`` walk per send)
    and waits for the round's cumulative message count, keeping every
    process live for the whole run.
    """
    for round_number in range(FLOOD_ROUNDS):
        message = PhaseMessage(tag="bench", round_number=round_number, phase=1, est=round_number % 2)
        yield from ctx.broadcast(message)
        need = (round_number + 1) * FLOOD_N
        yield from ctx.wait_until(lambda mailbox, need=need: True if len(mailbox) >= need else None)
    return 1


def _run_flood(kernel_cls, network_cls):
    """One measured flood run: returns ``(events_processed, wall_seconds)``.

    Only ``kernel.run()`` is timed (setup allocates thousands of objects and
    is not the comparison target), with collection forced beforehand and the
    collector disabled inside the timed region so allocator churn from one
    kernel's setup cannot be billed to the other's run.
    """
    rng = RandomSource(42)
    kernel = kernel_cls(config=SimConfig(), rng=rng)
    kernel.attach_network(network_cls(FLOOD_N, rng=rng))
    for pid in range(FLOOD_N):
        kernel.add_process(pid, _flood)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        result = kernel.run()
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    assert result.status is RunStatus.DECIDED
    return result.events_processed, wall


def test_bench_kernel_flood_matches_legacy():
    """Both kernels run the flood to the same decision over the same events."""
    legacy_events, _ = _run_flood(LegacyKernel, LegacyNetwork)
    new_events, _ = _run_flood(SimulationKernel, Network)
    assert legacy_events == new_events > 30_000


@pytest.mark.timing
def test_bench_kernel_speedup_vs_legacy(strict_timing):
    """The tentpole gate: ≥5x event throughput over the pre-refactor kernel.

    Measured live: interleaved best-of-``GATE_ROUNDS`` runs of the faithful
    pre-refactor reconstruction against the current kernel on the identical
    flood.  Interleaving plus best-of makes the comparison robust to
    transient machine noise; the ``timing`` marker gives wall-clock flake
    one retry on top (see ``repro.harness.pytest_timing``).
    """
    best = {"legacy": float("inf"), "new": float("inf")}
    events = {}
    for _ in range(GATE_ROUNDS):
        for label, kernel_cls, network_cls in (
            ("legacy", LegacyKernel, LegacyNetwork),
            ("new", SimulationKernel, Network),
        ):
            n_events, wall = _run_flood(kernel_cls, network_cls)
            events[label] = n_events
            best[label] = min(best[label], wall)
        if not strict_timing:
            break
    assert events["legacy"] == events["new"]
    ratio = best["legacy"] / best["new"]
    rate = events["new"] / best["new"]
    if not strict_timing:
        pytest.skip(
            f"timing gate disabled (needs --benchmark-only and >=4 CPUs); "
            f"single-round ratio={ratio:.2f}x, {rate:,.0f} events/sec"
        )
    assert ratio >= GATE_SPEEDUP, (
        f"kernel speedup {ratio:.2f}x below the {GATE_SPEEDUP:.1f}x gate "
        f"(legacy {best['legacy']:.4f}s, new {best['new']:.4f}s, {rate:,.0f} events/sec)"
    )


def test_bench_kernel_flood_throughput(benchmark):
    """Event throughput of the refactored kernel alone (trajectory number).

    ``scripts/bench_trajectory.py`` reads this benchmark's stats and derives
    the events/sec figure recorded in ``BENCH_<n>.json``.
    """
    events = benchmark(lambda: _run_flood(SimulationKernel, Network)[0])
    assert events > 30_000


@pytest.mark.parametrize(
    "algorithm",
    ["hybrid-local-coin", "hybrid-common-coin", "ben-or", "mp-common-coin", "mm-local-coin"],
)
def test_bench_single_run(benchmark, algorithm):
    config = ExperimentConfig(topology=TOPOLOGY, algorithm=algorithm, proposals="split", seed=5)

    def run():
        result = run_consensus(config)
        result.report.raise_on_violation()
        return result

    result = benchmark(run)
    assert result.terminated


def test_bench_shared_memory_baseline(benchmark):
    topology = ClusterTopology.single_cluster(7)
    config = ExperimentConfig(topology=topology, algorithm="shared-memory", proposals="split", seed=5)
    result = benchmark(lambda: run_consensus(config))
    assert result.terminated
    assert result.metrics.messages_sent == 0


def test_bench_cas_consensus_object(benchmark):
    from tests.helpers import SyncContext, drive

    def one_instance():
        obj = CASConsensusObject("bench", members={0, 1, 2, 3})
        return [drive(obj.propose(SyncContext(pid=pid), pid % 2)) for pid in range(4)]

    decisions = benchmark(one_instance)
    assert len(set(decisions)) == 1


def test_bench_threaded_consensus(benchmark):
    proposals = {pid: pid % 2 for pid in range(8)}
    decisions = benchmark(lambda: run_threaded_consensus(proposals))
    assert len(set(decisions.values())) == 1
