"""Benchmark the work-stealing coordinator's scheduling overhead.

The lease protocol adds filesystem work around every sweep point: a plan
header, an atomic lease claim, a heartbeat thread, a provenance-stamped
checkpoint and a worker manifest rewrite.  The contract is that all of it
together stays small next to the simulations themselves: a single-worker
``run_work_stealing`` of an E1-style plan must finish within 1.5x the
plain in-process ``run_plan`` of the same plan (same ``max_workers=1``
execution underneath, so the difference *is* the coordinator).

Like every timing gate in this repo, the hard assert is live only in
dedicated benchmark runs (``make bench``, i.e. ``--benchmark-only``) with
at least 4 usable CPUs; plain CI executions only smoke the code paths.
"""

import tempfile

import pytest

from repro.experiments import e1_figure1
from repro.experiments.common import default_seeds
from repro.harness.coordinator import merge_stolen, run_work_stealing
from repro.harness.distributed import run_plan

SEEDS = default_seeds(6)
OVERHEAD_LIMIT = 1.5


def _plain():
    return run_plan(e1_figure1.plan(seeds=SEEDS), max_workers=1)


def _stolen(out_dir):
    run_work_stealing(
        e1_figure1.plan(seeds=SEEDS), out_dir, worker="bench", max_workers=1
    )
    return merge_stolen(out_dir, e1_figure1.plan(seeds=SEEDS)).aggregates


# random_failure, not plain timing: lease fsyncs make this the noisiest
# wall-clock gate in the suite, so give it two reruns instead of one.
@pytest.mark.random_failure(max_runs=3)
def test_bench_work_stealing_overhead(benchmark, timed, strict_timing):
    # Best-of-N when the gate is live, so one scheduling hiccup (a slow
    # fsync, a noisy neighbour) cannot fail the perf gate on its own.
    samples = 3 if strict_timing else 1

    plain, plain_seconds = timed(_plain)
    for _ in range(samples - 1):
        _, seconds = timed(_plain)
        plain_seconds = min(plain_seconds, seconds)

    def stolen_run():
        with tempfile.TemporaryDirectory() as out_dir:
            return timed(lambda: _stolen(out_dir))

    stolen, stolen_seconds = benchmark.pedantic(
        stolen_run, rounds=1, iterations=1, warmup_rounds=0
    )
    for _ in range(samples - 1):
        _, seconds = stolen_run()
        stolen_seconds = min(stolen_seconds, seconds)

    ratio = stolen_seconds / max(plain_seconds, 1e-9)
    print()
    print(
        f"run_plan: {plain_seconds:.3f}s  run_work_stealing+merge: "
        f"{stolen_seconds:.3f}s  ratio: {ratio:.2f}x (limit {OVERHEAD_LIMIT}x)"
    )

    # Whatever the clock says, the coordinator must not change one bit.
    assert set(stolen) == set(plain)
    for label, aggregate in plain.items():
        assert stolen[label] == aggregate

    if strict_timing:
        assert ratio <= OVERHEAD_LIMIT, (
            f"work-stealing overhead {ratio:.2f}x exceeds {OVERHEAD_LIMIT}x"
        )
