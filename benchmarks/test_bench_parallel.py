"""Benchmark the parallel sweep engine against the serial path.

An E8-style scalability sweep (4 topology points x 5 seeds) is run twice:
once with ``max_workers=1`` (the serial path) and once with a worker pool.
The two must produce identical results; on a machine with at least 4 cores
the parallel sweep must also be at least 2x faster wall-clock.
"""

import pytest

from repro.harness.parallel import available_cpus

from repro.cluster.topology import ClusterTopology
from repro.harness.runner import ExperimentConfig
from repro.harness.sweep import grid

SEEDS = [1000 + index for index in range(5)]
SIZES = (4, 8, 12, 16)
PARALLEL_WORKERS = 4


def _scalability_sweep(max_workers):
    base = ExperimentConfig(
        topology=ClusterTopology.even_split(4, 2),
        algorithm="hybrid-local-coin",
        proposals="split",
    )
    axes = {"topology": [ClusterTopology.even_split(n, 2) for n in SIZES]}
    # full_results: this benchmark compares per-run results bit for bit; the
    # summary-mode pipeline has its own benchmark in test_bench_aggregate.py.
    return grid(base, axes, seeds=SEEDS, max_workers=max_workers, full_results=True)


# random_failure, not plain timing: the >=2x bar depends on pool spawn
# latency and free cores, the two things CI neighbours perturb most.
@pytest.mark.random_failure(max_runs=3)
def test_bench_parallel_sweep_throughput(benchmark, timed, strict_timing):
    # The hard >=2x assert is live only when the shared strict_timing gate
    # holds (dedicated `make bench` run, >=4 usable CPUs).  When live,
    # compare best-of-3 timings so a single scheduling hiccup (pool spawn, a
    # noisy neighbour) cannot fail the gate; other runs keep a single sample.
    samples = 3 if strict_timing else 1

    serial, serial_seconds = timed(lambda: _scalability_sweep(max_workers=1))
    for _ in range(samples - 1):
        _, seconds = timed(lambda: _scalability_sweep(max_workers=1))
        serial_seconds = min(serial_seconds, seconds)
    parallel, parallel_seconds = benchmark.pedantic(
        lambda: timed(lambda: _scalability_sweep(max_workers=PARALLEL_WORKERS)),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    for _ in range(samples - 1):
        _, seconds = timed(lambda: _scalability_sweep(max_workers=PARALLEL_WORKERS))
        parallel_seconds = min(parallel_seconds, seconds)
    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    print()
    print(
        f"serial: {serial_seconds:.3f}s  parallel({PARALLEL_WORKERS} workers): "
        f"{parallel_seconds:.3f}s  speedup: {speedup:.2f}x  cores: {available_cpus()}"
    )

    # Identical sweep structure and bit-identical metrics (wall time aside).
    assert serial.labels() == parallel.labels()
    for serial_point, parallel_point in zip(serial.points, parallel.points):
        assert len(serial_point.results) == len(SEEDS)
        for left, right in zip(serial_point.results, parallel_point.results):
            left_metrics = left.metrics.as_dict()
            right_metrics = right.metrics.as_dict()
            left_metrics.pop("wall_time_seconds")
            right_metrics.pop("wall_time_seconds")
            assert left_metrics == right_metrics
            assert left.sim_result.decisions == right.sim_result.decisions

    if strict_timing:
        assert speedup >= 2.0, f"expected >=2x speedup on >=4 cores, got {speedup:.2f}x"
