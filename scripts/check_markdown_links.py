"""Check that relative markdown links in the repo's docs point at real files.

Scans the documentation surface (top-level ``*.md``, ``docs/``, ``examples/``
and in-tree READMEs) for ``[text](target)`` links and verifies every
*relative* target exists on disk.  External URLs (``http(s)://``,
``mailto:``), pure in-page anchors (``#...``) and targets that resolve
outside the repository (GitHub-web-relative links like the CI badge's
``../../actions/...``) are skipped -- only claims about files in this repo
are checked.

Run from anywhere inside the repo:  python scripts/check_markdown_links.py
Exit status: 0 when every link resolves, 1 otherwise (broken links listed).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

#: ``[text](target)`` -- good enough for the plain links these docs use.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Where documentation lives, relative to the repo root.
DOC_GLOBS = ("*.md", "docs/**/*.md", "examples/**/*.md", "src/**/*.md", ".github/**/*.md")


def repo_root() -> Path:
    """The repository root (parent of the scripts/ directory)."""
    return Path(__file__).resolve().parent.parent


def doc_files(root: Path) -> List[Path]:
    """Every markdown file on the documentation surface, deduplicated."""
    found = set()
    for pattern in DOC_GLOBS:
        found.update(root.glob(pattern))
    return sorted(path for path in found if path.is_file())


def broken_links(root: Path) -> List[Tuple[Path, str]]:
    """All ``(file, target)`` pairs whose relative target does not exist."""
    broken = []
    for md_file in doc_files(root):
        for target in LINK_RE.findall(md_file.read_text(encoding="utf-8")):
            if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):  # http:, https:, mailto:
                continue
            if target.startswith("#"):  # in-page anchor
                continue
            path_part = target.split("#", 1)[0]
            resolved = (md_file.parent / path_part).resolve()
            try:
                resolved.relative_to(root)
            except ValueError:
                continue  # escapes the repo (e.g. GitHub-web-relative badge links)
            if not resolved.exists():
                broken.append((md_file, target))
    return broken


def main() -> int:
    """Entry point; prints broken links and returns the exit status."""
    root = repo_root()
    broken = broken_links(root)
    for md_file, target in broken:
        print(f"{md_file.relative_to(root)}: broken link -> {target}")
    checked = len(doc_files(root))
    if broken:
        print(f"{len(broken)} broken link(s) across {checked} markdown file(s)")
        return 1
    print(f"all relative links resolve across {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
