#!/usr/bin/env python
"""Measure the kernel perf trajectory and write ``BENCH_<n>.json``.

Runs the micro kernel-flood benchmark (current and pre-refactor kernels,
see ``benchmarks/legacy_kernel.py``), the single-run micro benchmarks, and
the E8 scalability sweep workload, and records one JSON object per
benchmark::

    {"<name>": {"events/sec": ..., "wall": ..., "python": ..., "platform": ...}}

``events/sec`` is simulator events processed per wall-clock second (the
kernel's throughput unit; see ``docs/performance.md``) and ``wall`` the
best-of wall-clock seconds of the benchmark.  With ``--compare`` the script
also diffs events/sec against the previous ``BENCH_*.json`` in the repo
root and warns (without failing) on regressions -- the trajectory gate is
advisory for now.
"""

import argparse
import gc
import glob
import json
import pathlib
import platform
import re
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_OUT = REPO_ROOT / "BENCH_6.json"

#: Warn when a benchmark loses more than this fraction of its event rate.
REGRESSION_TOLERANCE = 0.10


def _timed(fn):
    """Run ``fn`` once with GC hygiene; return ``(value, wall_seconds)``."""
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        value = fn()
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    return value, wall


def _best_of(fn, rounds):
    """Best wall clock over ``rounds`` runs; returns ``(value, best_wall)``."""
    best = float("inf")
    value = None
    for _ in range(rounds):
        value, wall = _timed(fn)
        best = min(best, wall)
    return value, best


def _entry(events, wall):
    """One schema row: events/sec, wall and the measuring interpreter."""
    return {
        "events/sec": round(events / wall, 1) if events else None,
        "wall": round(wall, 4),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def measure(rounds):
    """Run every trajectory benchmark; returns ``{name: entry}``."""
    from benchmarks.legacy_kernel import LegacyKernel, LegacyNetwork
    from benchmarks.test_bench_micro import _run_flood
    from repro.experiments import e8_scalability
    from repro.experiments.common import default_seeds
    from repro.harness.runner import run_consensus
    from repro.network.transport import Network
    from repro.sim.kernel import SimulationKernel

    results = {}

    # The two flood variants are measured interleaved (legacy, new, legacy,
    # new, ...) with best-of on each side -- the same protocol as the
    # speedup gate in benchmarks/test_bench_micro.py -- so a load spike on
    # the host skews both sides alike instead of one.
    best = {"legacy": float("inf"), "new": float("inf")}
    events = {}
    for _ in range(rounds):
        for label, kernel_cls, network_cls in (
            ("legacy", LegacyKernel, LegacyNetwork),
            ("new", SimulationKernel, Network),
        ):
            # _run_flood times kernel.run() itself (setup excluded, GC
            # quiesced), so its wall is used directly.
            n_events, wall = _run_flood(kernel_cls, network_cls)
            events[label] = n_events
            best[label] = min(best[label], wall)
    results["kernel_flood_n64"] = _entry(events["new"], best["new"])
    results["kernel_flood_n64_legacy"] = _entry(events["legacy"], best["legacy"])
    speedup = best["legacy"] / best["new"]
    print(f"kernel_flood_n64: {events['new'] / best['new']:,.0f} events/sec ({best['new']:.4f}s)")
    print(
        f"kernel_flood_n64_legacy: {events['legacy'] / best['legacy']:,.0f} events/sec "
        f"({best['legacy']:.4f}s, speedup {speedup:.2f}x)"
    )

    from repro.cluster.topology import ClusterTopology
    from repro.harness.runner import ExperimentConfig

    topology = ClusterTopology.figure1_right()
    for algorithm in ("hybrid-local-coin", "hybrid-common-coin", "ben-or", "mp-common-coin", "mm-local-coin"):
        config = ExperimentConfig(topology=topology, algorithm=algorithm, proposals="split", seed=5)
        result, wall = _best_of(lambda config=config: run_consensus(config), max(2, rounds // 2))
        n_events = result.sim_result.events_processed
        results[f"micro_single_run_{algorithm}"] = _entry(n_events, wall)
        print(f"micro_single_run_{algorithm}: {n_events / wall:,.0f} events/sec ({wall:.4f}s)")

    # The E8 sweep workload, run serially so events can be totalled.
    plan = e8_scalability.plan(seeds=default_seeds(4), sizes=(4, 8, 12))

    def e8_serial():
        total = 0
        for point in plan.points:
            for seed in plan.seeds:
                total += run_consensus(point.config.with_seed(seed)).sim_result.events_processed
        return total

    total_events, wall = _timed(e8_serial)
    results["e8_scalability_serial"] = _entry(total_events, wall)
    print(f"e8_scalability_serial: {total_events / wall:,.0f} events/sec ({wall:.4f}s)")

    return results


def previous_bench(out_path):
    """The highest-numbered ``BENCH_*.json`` in the repo root besides ``out``."""
    candidates = []
    for path in glob.glob(str(REPO_ROOT / "BENCH_*.json")):
        path = pathlib.Path(path)
        if path.resolve() == out_path.resolve():
            continue
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if match:
            candidates.append((int(match.group(1)), path))
    return max(candidates)[1] if candidates else None


def compare(current, previous_path):
    """Warn (don't fail) on events/sec regressions vs a previous trajectory."""
    previous = json.loads(previous_path.read_text())
    print(f"\ntrajectory vs {previous_path.name}:")
    for name, entry in sorted(current.items()):
        then = previous.get(name, {}).get("events/sec")
        now = entry.get("events/sec")
        if not then or not now:
            print(f"  {name}: no prior events/sec to compare")
            continue
        change = (now - then) / then
        marker = ""
        if change < -REGRESSION_TOLERANCE:
            marker = "  <-- WARNING: regression"
        print(f"  {name}: {then:,.0f} -> {now:,.0f} events/sec ({change:+.1%}){marker}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT, help="trajectory file to write")
    parser.add_argument("--rounds", type=int, default=5, help="best-of rounds for the flood benchmark")
    parser.add_argument(
        "--compare",
        action="store_true",
        help="diff events/sec against the previous BENCH_*.json (warn-only)",
    )
    args = parser.parse_args(argv)

    results = measure(args.rounds)
    args.out.write_text(json.dumps(results, indent=1, sort_keys=True) + "\n")
    print(f"\nwrote {args.out}")

    if args.compare:
        previous = previous_bench(args.out)
        if previous is None:
            print("no previous BENCH_*.json found; nothing to compare")
        else:
            compare(results, previous)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
