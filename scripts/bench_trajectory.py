#!/usr/bin/env python
"""Measure the kernel perf trajectory and write ``BENCH_<n>.json``.

Runs the micro kernel-flood benchmark (current and pre-refactor kernels,
see ``benchmarks/legacy_kernel.py``), the single-run micro benchmarks, and
the E8 scalability sweep workload, and records one JSON object per
benchmark::

    {"<name>": {"events/sec": ..., "wall": ..., "python": ..., "platform": ...}}

``events/sec`` is simulator events processed per wall-clock second (the
kernel's throughput unit; see ``docs/performance.md``) and ``wall`` the
best-of wall-clock seconds of the benchmark.  The output name is derived:
the next free ``BENCH_<n>.json`` in the repo root (override with ``--out``).
With ``--compare`` the script also diffs events/sec against the
highest-numbered previous ``BENCH_*.json``; the diff is warn-only unless
``--fail-on-regression PCT`` arms it, in which case any benchmark that
loses more than PCT percent of its event rate makes the script exit 1
(the nightly CI lane runs with ``--fail-on-regression 25``; push/PR lanes
stay warn-only -- see ``docs/performance.md``).
"""

import argparse
import gc
import glob
import json
import pathlib
import platform
import re
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Warn when a benchmark loses more than this fraction of its event rate.
REGRESSION_TOLERANCE = 0.10


def _numbered_benches():
    """All ``(n, path)`` pairs for ``BENCH_<n>.json`` files in the repo root."""
    pairs = []
    for path in glob.glob(str(REPO_ROOT / "BENCH_*.json")):
        path = pathlib.Path(path)
        match = re.fullmatch(r"BENCH_(\d+)\.json", path.name)
        if match:
            pairs.append((int(match.group(1)), path))
    return pairs


def next_bench_path():
    """The next free ``BENCH_<n>.json`` (one past the highest committed)."""
    numbered = _numbered_benches()
    next_index = max(n for n, _ in numbered) + 1 if numbered else 1
    return REPO_ROOT / f"BENCH_{next_index}.json"


def _timed(fn):
    """Run ``fn`` once with GC hygiene; return ``(value, wall_seconds)``."""
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        value = fn()
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    return value, wall


def _best_of(fn, rounds):
    """Best wall clock over ``rounds`` runs; returns ``(value, best_wall)``."""
    best = float("inf")
    value = None
    for _ in range(rounds):
        value, wall = _timed(fn)
        best = min(best, wall)
    return value, best


def _entry(events, wall):
    """One schema row: events/sec, wall and the measuring interpreter."""
    return {
        "events/sec": round(events / wall, 1) if events else None,
        "wall": round(wall, 4),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def measure(rounds):
    """Run every trajectory benchmark; returns ``{name: entry}``."""
    from benchmarks.legacy_kernel import LegacyKernel, LegacyNetwork
    from benchmarks.test_bench_micro import _run_flood
    from repro.experiments import e8_scalability
    from repro.experiments.common import default_seeds
    from repro.harness.runner import run_consensus
    from repro.network.transport import Network
    from repro.sim.kernel import SimulationKernel

    results = {}

    # The two flood variants are measured interleaved (legacy, new, legacy,
    # new, ...) with best-of on each side -- the same protocol as the
    # speedup gate in benchmarks/test_bench_micro.py -- so a load spike on
    # the host skews both sides alike instead of one.
    best = {"legacy": float("inf"), "new": float("inf")}
    events = {}
    for _ in range(rounds):
        for label, kernel_cls, network_cls in (
            ("legacy", LegacyKernel, LegacyNetwork),
            ("new", SimulationKernel, Network),
        ):
            # _run_flood times kernel.run() itself (setup excluded, GC
            # quiesced), so its wall is used directly.
            n_events, wall = _run_flood(kernel_cls, network_cls)
            events[label] = n_events
            best[label] = min(best[label], wall)
    results["kernel_flood_n64"] = _entry(events["new"], best["new"])
    results["kernel_flood_n64_legacy"] = _entry(events["legacy"], best["legacy"])
    speedup = best["legacy"] / best["new"]
    print(f"kernel_flood_n64: {events['new'] / best['new']:,.0f} events/sec ({best['new']:.4f}s)")
    print(
        f"kernel_flood_n64_legacy: {events['legacy'] / best['legacy']:,.0f} events/sec "
        f"({best['legacy']:.4f}s, speedup {speedup:.2f}x)"
    )

    from repro.cluster.topology import ClusterTopology
    from repro.harness.runner import ExperimentConfig

    topology = ClusterTopology.figure1_right()
    for algorithm in ("hybrid-local-coin", "hybrid-common-coin", "ben-or", "mp-common-coin", "mm-local-coin"):
        config = ExperimentConfig(topology=topology, algorithm=algorithm, proposals="split", seed=5)
        result, wall = _best_of(lambda config=config: run_consensus(config), max(2, rounds // 2))
        n_events = result.sim_result.events_processed
        results[f"micro_single_run_{algorithm}"] = _entry(n_events, wall)
        print(f"micro_single_run_{algorithm}: {n_events / wall:,.0f} events/sec ({wall:.4f}s)")

    # The E8 sweep workload, run serially so events can be totalled.
    plan = e8_scalability.plan(seeds=default_seeds(4), sizes=(4, 8, 12))

    def e8_serial():
        total = 0
        for point in plan.points:
            for seed in plan.seeds:
                total += run_consensus(point.config.with_seed(seed)).sim_result.events_processed
        return total

    total_events, wall = _timed(e8_serial)
    results["e8_scalability_serial"] = _entry(total_events, wall)
    print(f"e8_scalability_serial: {total_events / wall:,.0f} events/sec ({wall:.4f}s)")

    return results


def previous_bench(out_path):
    """The highest-numbered ``BENCH_*.json`` in the repo root besides ``out``."""
    candidates = [
        (n, path)
        for n, path in _numbered_benches()
        if path.resolve() != out_path.resolve()
    ]
    return max(candidates)[1] if candidates else None


def compare(current, previous_path, fail_tolerance=None):
    """Diff events/sec vs a previous trajectory; return the failing names.

    Every drop beyond :data:`REGRESSION_TOLERANCE` is flagged as a warning.
    ``fail_tolerance`` (a fraction, e.g. 0.25) arms the hard gate: the
    returned list holds the benchmarks that regressed beyond it, for the
    caller to turn into a non-zero exit.
    """
    previous = json.loads(previous_path.read_text())
    failures = []
    print(f"\ntrajectory vs {previous_path.name}:")
    for name, entry in sorted(current.items()):
        then = previous.get(name, {}).get("events/sec")
        now = entry.get("events/sec")
        if not then or not now:
            print(f"  {name}: no prior events/sec to compare")
            continue
        change = (now - then) / then
        marker = ""
        if fail_tolerance is not None and change < -fail_tolerance:
            marker = "  <-- FAILURE: regression beyond the hard gate"
            failures.append(name)
        elif change < -REGRESSION_TOLERANCE:
            marker = "  <-- WARNING: regression"
        print(f"  {name}: {then:,.0f} -> {now:,.0f} events/sec ({change:+.1%}){marker}")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="trajectory file to write (default: the next free BENCH_<n>.json)",
    )
    parser.add_argument("--rounds", type=int, default=5, help="best-of rounds for the flood benchmark")
    parser.add_argument(
        "--compare",
        action="store_true",
        help="diff events/sec against the previous BENCH_*.json",
    )
    parser.add_argument(
        "--fail-on-regression",
        type=float,
        default=None,
        metavar="PCT",
        help="with --compare, exit 1 when any benchmark loses more than "
        "PCT%% of its event rate (the nightly lane uses 25)",
    )
    args = parser.parse_args(argv)
    if args.fail_on_regression is not None and not args.compare:
        parser.error("--fail-on-regression requires --compare")

    out_path = args.out if args.out is not None else next_bench_path()
    results = measure(args.rounds)
    out_path.write_text(json.dumps(results, indent=1, sort_keys=True) + "\n")
    print(f"\nwrote {out_path}")

    if args.compare:
        previous = previous_bench(out_path)
        if previous is None:
            print("no previous BENCH_*.json found; nothing to compare")
        else:
            tolerance = (
                args.fail_on_regression / 100.0
                if args.fail_on_regression is not None
                else None
            )
            failures = compare(results, previous, fail_tolerance=tolerance)
            if failures:
                print(
                    f"\n{len(failures)} benchmark(s) regressed beyond "
                    f"{args.fail_on_regression:g}%: " + ", ".join(failures)
                )
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
