#!/usr/bin/env python
"""Freeze the kernel's per-run summaries into the golden fixture.

Runs the small e1-e9 + e11 configurations from ``tests.helpers.golden_plans``
serially and writes every resulting :class:`RunSummary` (floats as exact
``float.hex()`` strings) to ``tests/golden/kernel_summaries.json``.

The committed fixture was generated from the PRE-refactor kernel (before the
flat-tuple event queue, __slots__ and batched delay sampling landed), so
``tests/test_golden_kernel.py`` asserting against it proves the refactored
kernel reproduces the original executions bit-for-bit.  Re-run this script
only when a deliberate, understood behaviour change invalidates the fixture,
and say so in the commit message.
"""

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_OUT = REPO_ROOT / "tests" / "golden" / "kernel_summaries.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", type=pathlib.Path, default=DEFAULT_OUT, help="fixture path to write"
    )
    args = parser.parse_args(argv)

    from tests.helpers import compute_golden_summaries

    fixture = compute_golden_summaries()
    total = sum(
        len(point["runs"]) for points in fixture["experiments"].values() for point in points
    )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(fixture, indent=1, sort_keys=True) + "\n")
    print(f"wrote {args.out} ({len(fixture['experiments'])} experiments, {total} runs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
