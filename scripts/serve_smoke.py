"""End-to-end smoke of the live sweep service (``make serve-smoke``).

Runs a small work-stealing sweep, kills the worker halfway through (the
same ``run_many`` seam the coordinator tests use), starts the monitoring
server on an ephemeral port, and drives every endpoint over real HTTP:

- ``/status`` must report the half-finished counts and pooled telemetry,
- ``/progress`` must show exactly the checkpointed points as ``done``,
- ``/workers`` must list the killed worker's manifest row,
- ``/aggregate`` must fold the completed prefix and mark it incomplete,
- ``/`` must render the HTML page around the shared text renderer.

Then a second worker finishes the directory, ``/aggregate`` flips to
complete, and the served aggregates are checked bit-identical to the
batch ``merge_stolen`` fold.  Exits nonzero on any violated expectation.
"""

import json
import sys
import threading
import time
import urllib.request
from pathlib import Path
from tempfile import TemporaryDirectory

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness import distributed  # noqa: E402
from repro.harness.coordinator import merge_stolen, run_work_stealing  # noqa: E402
from repro.obs.serve import aggregate_to_json, make_server, render_status_text  # noqa: E402

KILL_AFTER_POINTS = 2


def build_plan():
    from repro.experiments import e1_figure1
    from repro.experiments.common import default_seeds

    return e1_figure1.plan(seeds=default_seeds(3))


def get_json(port, path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=10) as response:
        return json.loads(response.read().decode("utf-8"))


def run_killed_worker(plan, out_dir):
    """One worker that dies after ``KILL_AFTER_POINTS`` checkpointed points."""
    real_run_many = distributed.run_many
    calls = {"count": 0}

    def dying(*args, **kwargs):
        if calls["count"] >= KILL_AFTER_POINTS:
            raise KeyboardInterrupt("simulated kill")
        calls["count"] += 1
        return real_run_many(*args, **kwargs)

    distributed.run_many = dying
    try:
        run_work_stealing(plan, out_dir, worker="victim", max_workers=1, lease_ttl=0.05)
        raise AssertionError("the victim worker should have been killed")
    except KeyboardInterrupt:
        pass
    finally:
        distributed.run_many = real_run_many


def main():
    plan = build_plan()
    with TemporaryDirectory(prefix="serve-smoke-") as tmp:
        out = Path(tmp) / "runs"
        run_killed_worker(plan, out)

        server = make_server(out, build_plan(), port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status = get_json(port, "/status")
            assert status["mode"] == "steal", status
            assert status["done"] == KILL_AFTER_POINTS, status
            fleet = status["telemetry"]["counters"]
            assert fleet["points_computed"] == KILL_AFTER_POINTS, fleet
            print(f"/status     ok: {status['done']}/{status['points_total']} done, fleet {fleet}")

            progress = get_json(port, "/progress")
            done = [point["label"] for point in progress["points"] if point["state"] == "done"]
            assert len(done) == KILL_AFTER_POINTS, progress
            print(f"/progress   ok: done={done}")

            workers = get_json(port, "/workers")
            assert any(row["worker"] == "victim" for row in workers["workers"]), workers
            print(f"/workers    ok: {len(workers['workers'])} manifest row(s)")

            partial = get_json(port, "/aggregate")
            assert partial["complete"] is False, partial
            assert partial["folded"] == KILL_AFTER_POINTS, partial
            print(f"/aggregate  ok: folded {partial['folded']}, pending {partial['pending']}")

            with urllib.request.urlopen(f"http://127.0.0.1:{port}/", timeout=10) as response:
                page = response.read().decode("utf-8")
            assert "<pre>" in page and "points done" in page, page[:200]
            print("/           ok: HTML page renders the shared status text")

            # A second worker drains the orphaned points; the served
            # aggregate must flip to complete and match the batch merge bit
            # for bit (modulo the JSON projection).
            time.sleep(0.2)  # let the victim's abandoned lease expire
            run_work_stealing(build_plan(), out, worker="finisher", max_workers=1, lease_ttl=0.05)
            final = get_json(port, "/aggregate")
            assert final["complete"] is True, final
            reference = merge_stolen(out, build_plan())
            for label, aggregate in reference.aggregates.items():
                assert final["aggregates"][label] == aggregate_to_json(aggregate), label
            print(f"finish      ok: {final['folded']} folded, bit-identical to merge_stolen")
            print(render_status_text(out))
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
    print("serve smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
