"""Work stealing: a worker dies holding a lease, another steals its point.

Walks the dynamic-scheduling lifecycle on a tiny E1 sweep (both Figure 1
decompositions x both hybrid algorithms, 3 seeds):

1. worker ``mayfly`` computes one sweep point, claims its next point via an
   atomic lease file -- and is "killed" before computing it, so the lease's
   heartbeat stops and no checkpoint appears;
2. worker ``steady`` runs the *same* command over the same directory: it
   claims the never-started points, watches ``mayfly``'s lease expire, and
   **steals** the orphaned point (lease generation 0 -> 1);
3. ``python -m repro status``-style counts show the directory's progress;
4. the merged result is verified *bit-identical* to running the whole
   experiment on one host -- stolen points keep their unsharded summary
   indices, so theft never changes a single bit of the answer.

In real use both workers are just ``python -m repro run e1 --steal --out
runs/`` on different machines; see docs/distributed.md for the protocol.

Run with:  python examples/work_stealing.py
"""

import tempfile
import time

from repro.experiments import e1_figure1
from repro.experiments.common import default_seeds
from repro.harness.coordinator import (
    merge_stolen,
    point_checkpoint_path,
    run_work_stealing,
    steal_status,
    try_claim,
)
from repro.harness.distributed import run_plan

SEEDS = default_seeds(3)
TTL = 0.2  # tiny lease so the demo does not wait; real fleets use ~60 s


def main() -> None:
    plan = e1_figure1.plan(seeds=SEEDS)
    print(f"plan {plan.key}: {len(plan.points)} sweep points x {len(plan.seeds)} seeds "
          f"= {plan.total_runs} runs  (fingerprint {plan.fingerprint()[:12]}...)")
    print()

    with tempfile.TemporaryDirectory() as out_dir:
        # --- 1) mayfly computes one point, claims another, and "dies" ------
        mayfly = run_work_stealing(
            plan, out_dir, worker="mayfly", lease_ttl=TTL, max_points=1
        )
        victim_point = next(
            pi for pi in range(len(plan.points))
            if not point_checkpoint_path(out_dir, pi).exists()
        )
        lease = try_claim(out_dir, plan, victim_point, "mayfly", TTL)
        assert lease is not None
        print(f"mayfly computed {mayfly.executed} then died holding a lease on "
              f"{plan.points[victim_point].label!r} (no heartbeat, no checkpoint)")

        time.sleep(2 * TTL)  # the dead worker's lease expires
        before = steal_status(out_dir)
        print(f"before stealing: {before.done}/{before.points_total} points done, "
              f"{before.orphaned} orphaned (expired lease), {before.unclaimed} unclaimed")
        print()

        # --- 2) steady claims the rest and steals the orphaned point -------
        steady = run_work_stealing(plan, out_dir, worker="steady", lease_ttl=TTL)
        print(f"steady computed {len(steady.executed)} fresh points and stole "
              f"{steady.stolen} from the dead worker")
        if not steady.stolen:
            raise SystemExit("expected the orphaned point to be stolen")

        # --- 3) the directory tells the whole story ------------------------
        after = steal_status(out_dir)
        print(f"after:  {after.done}/{after.points_total} points done "
              f"({after.stolen} changed hands), workers: "
              + ", ".join(f"{row['worker']} computed {row['computed']}" for row in after.workers))

        # --- 4) merge == single host, bit for bit --------------------------
        merged = merge_stolen(out_dir, e1_figure1.plan(seeds=SEEDS))
        report = e1_figure1.build_report(merged.plan, merged.aggregates)

    direct_aggregates = run_plan(e1_figure1.plan(seeds=SEEDS))
    direct = e1_figure1.build_report(plan, direct_aggregates)
    identical = (
        report.format(precision=12) == direct.format(precision=12)
        and all(
            merged.aggregates[point.label] == direct_aggregates[point.label]
            for point in plan.points
        )
    )
    print(f"\nmerged report equals the single-host run bit-for-bit: {identical}")
    print()
    print(report.format())
    if not identical:  # make the regression visible to CI's examples-smoke job
        raise SystemExit(1)


if __name__ == "__main__":
    main()
