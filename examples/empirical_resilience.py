"""Empirical delays end to end: fit from measured RTTs, stress flaky hosts.

The production workflow behind experiment e11, in one script:

1. load a measured RTT dataset (the checked-in fixture mirrors the
   package-embedded reference dataset) and fit both trace-driven delay
   models -- the ECDF-grid :class:`~repro.network.EmpiricalDelay` and the
   :class:`~repro.network.ShiftedLogNormalDelay` -- rescaled to the
   simulator's unit-mean conventions (the CLI twin is
   ``python -m repro fit-delays tests/data/rtt_sample.csv --model empirical
   --unit-mean``);
2. build a small e11 plan sweeping those fitted models against
   crash-recovery fault schedules (a second host dying while the first is
   still recovering, and a two-replica loss window);
3. run it as two shards into a shared directory and merge -- then verify
   the merged aggregates are *bit-identical* to the single-host run;
4. build the e11 report, which demands a 100% safety rate *and* a 100%
   termination rate in every cell: these schedules always leave a majority
   able to return, so a stall is a finding.

The script exits nonzero if the merge is not bit-identical or the report
fails -- CI's examples-smoke job runs it on every push.

Run with:  python examples/empirical_resilience.py
"""

import tempfile
from pathlib import Path

from repro.experiments import e11_resilience
from repro.experiments.common import default_seeds
from repro.harness.distributed import ShardSpec, merge_shards, run_plan, run_shard
from repro.network import fit_delay_model, load_rtt_samples

RTT_DATASET = Path(__file__).resolve().parent.parent / "tests" / "data" / "rtt_sample.csv"
SEEDS = default_seeds(2)


def main() -> None:
    # --- 1) fit the trace-driven delay models from measurements ------------
    samples = load_rtt_samples(RTT_DATASET)
    print(f"loaded {len(samples)} RTT samples from {RTT_DATASET.name} "
          f"(min {min(samples):.1f}ms, max {max(samples):.1f}ms)")
    for kind in ("empirical", "shifted-lognormal"):
        model = fit_delay_model(samples, kind=kind, unit_mean=True)
        print(f"  {kind:>17}: {model.describe()}")
    print()

    # --- 2) a small e11 plan over fitted delays x fault schedules ----------
    plan = e11_resilience.plan(
        seeds=SEEDS,
        scenarios=("kill-during-recovery", "replica-loss-2"),
        delays=("empirical", "shifted-lognormal"),
        round_cap=15,
    )
    print(f"plan {plan.key}: {len(plan.points)} sweep points x {len(plan.seeds)} seeds "
          f"= {plan.total_runs} runs  (fingerprint {plan.fingerprint()[:12]}...)")
    print()

    # --- 3) two shards, one merge, bit-identity against one host ----------
    with tempfile.TemporaryDirectory() as out_dir:
        for index in (1, 2):
            result = run_shard(plan, ShardSpec(index, 2), out_dir)
            print(f"shard {index}/2 ran {result.runs_executed} runs "
                  f"({len(result.executed)} sweep points checkpointed)")
        merged = merge_shards(out_dir, e11_resilience.plan(
            seeds=SEEDS,
            scenarios=("kill-during-recovery", "replica-loss-2"),
            delays=("empirical", "shifted-lognormal"),
            round_cap=15,
        ))

    direct_aggregates = run_plan(plan)
    identical = all(
        merged.aggregates[point.label] == direct_aggregates[point.label]
        for point in plan.points
    )
    print(f"\nmerged aggregates equal the single-host run bit-for-bit: {identical}")

    # --- 4) the report gates on safety AND termination ---------------------
    report = e11_resilience.build_report(plan, merged.aggregates)
    print()
    print(report.format())
    if not (identical and report.passed):  # visible to CI's examples-smoke job
        raise SystemExit(1)


if __name__ == "__main__":
    main()
