"""Sharded sweep: split one experiment over "machines", kill one, resume, merge.

Walks the full distributed lifecycle on a tiny E1 sweep (both Figure 1
decompositions x both hybrid algorithms, 3 seeds):

1. build the experiment's :class:`~repro.harness.distributed.SweepPlan` --
   pure data, identical on every host that builds it;
2. run shard 1/2 and shard 2/2 into a shared output directory (here two
   calls in one process; in real use, two machines running
   ``python -m repro run e1 --shard i/2 --out runs/``);
3. simulate a machine dying mid-shard by deleting one of shard 2's
   per-point checkpoints, then re-run shard 2: only the lost point is
   recomputed, the surviving checkpoints are reused;
4. merge the shards and verify the result is *bit-identical* to running
   the whole experiment on one host.

Run with:  python examples/sharded_sweep.py
"""

import tempfile

from repro.experiments import e1_figure1
from repro.experiments.common import default_seeds
from repro.harness.distributed import (
    ShardSpec,
    checkpoint_path,
    merge_shards,
    run_plan,
    run_shard,
)

SEEDS = default_seeds(3)


def main() -> None:
    plan = e1_figure1.plan(seeds=SEEDS)
    print(f"plan {plan.key}: {len(plan.points)} sweep points x {len(plan.seeds)} seeds "
          f"= {plan.total_runs} runs  (fingerprint {plan.fingerprint()[:12]}...)")
    print()

    with tempfile.TemporaryDirectory() as out_dir:
        # --- 1) two "machines" each run their half -------------------------
        for index in (1, 2):
            result = run_shard(plan, ShardSpec(index, 2), out_dir)
            print(f"shard {index}/2 ran {result.runs_executed} runs "
                  f"({len(result.executed)} sweep points checkpointed)")

        # --- 2) machine 2 "dies" and loses one checkpoint ------------------
        lost = checkpoint_path(out_dir, ShardSpec(2, 2), 0)
        lost.unlink()
        print(f"\nsimulated crash: deleted {lost.name}")

        # --- 3) re-running the same command resumes, not restarts ----------
        resumed = run_shard(plan, ShardSpec(2, 2), out_dir)
        print(f"shard 2/2 re-run: {len(resumed.resumed)} points resumed from "
              f"checkpoints, {len(resumed.executed)} recomputed "
              f"({resumed.runs_executed} runs instead of "
              f"{resumed.runs_executed + resumed.runs_resumed})")

        # --- 4) merge == single host, bit for bit --------------------------
        merged = merge_shards(out_dir, e1_figure1.plan(seeds=SEEDS))
        report = e1_figure1.build_report(merged.plan, merged.aggregates)

    direct_aggregates = run_plan(e1_figure1.plan(seeds=SEEDS))
    direct = e1_figure1.build_report(plan, direct_aggregates)
    identical = (
        report.format(precision=12) == direct.format(precision=12)
        and all(
            merged.aggregates[point.label] == direct_aggregates[point.label]
            for point in plan.points
        )
    )
    print(f"\nmerged report equals the single-host run bit-for-bit: {identical}")
    print()
    print(report.format())
    if not identical:  # make the regression visible to CI's examples-smoke job
        raise SystemExit(1)


if __name__ == "__main__":
    main()
