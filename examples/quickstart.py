"""Quickstart: run the paper's two consensus algorithms on the Figure 1 system.

Builds the right-hand decomposition of Figure 1 (seven processes, three
clusters, one of which holds a strict majority), runs Algorithm 2 (local
coins) and Algorithm 3 (common coin) on a split proposal vector, and prints
what was decided and what it cost.

Run with:  python examples/quickstart.py
"""

from repro import ClusterTopology, ExperimentConfig, run_consensus
from repro.harness.report import format_table


def main() -> None:
    topology = ClusterTopology.figure1_right()
    print("Topology:", topology.describe())
    print("Majority cluster present:", topology.majority_cluster_index() is not None)
    print()

    rows = []
    for algorithm in ("hybrid-local-coin", "hybrid-common-coin"):
        result = run_consensus(
            ExperimentConfig(topology=topology, algorithm=algorithm, proposals="split", seed=2024)
        )
        result.report.raise_on_violation()
        metrics = result.metrics
        rows.append(
            [
                algorithm,
                metrics.decided_value,
                metrics.rounds_max,
                metrics.messages_sent,
                metrics.sm_ops,
                f"{metrics.decision_time_max:.2f}",
            ]
        )
    print(
        format_table(
            ["algorithm", "decided", "rounds", "messages", "sm ops", "virtual latency"],
            rows,
            title="Consensus on Figure 1 (right), proposals = split (0,0,0,1,1,1,1)",
        )
    )
    print()
    print("Every process proposed 0 or 1; all correct processes decided the same value,")
    print("agreed on inside each cluster first (shared memory) and across clusters second")
    print("(message passing) -- the hybrid communication model of the paper.")


if __name__ == "__main__":
    main()
