"""The scalability/efficiency trade-off that motivates the hybrid model.

For a fixed system size, sweep the cluster layout from "everything in one
shared memory" (m = 1) to "pure message passing" (m = n) and report what each
layout costs in messages, shared-memory operations, rounds and virtual
latency, plus how many crashes each layout can survive while still
guaranteeing termination (the paper's cluster-cover condition).

Run with:  python examples/cluster_layout_tradeoffs.py [n]
"""

import sys

from repro import ClusterTopology, ExperimentConfig, run_consensus
from repro.harness.report import format_table
from repro.harness.stats import summarize


def max_tolerated_crashes(topology: ClusterTopology) -> int:
    """Largest f such that *some* pattern of f crashes keeps the termination condition.

    With clusters sorted by size, keeping one survivor in each of the largest
    clusters that cover a majority tolerates every other process crashing.
    """
    sizes = sorted(topology.cluster_sizes, reverse=True)
    covered = 0
    survivors = 0
    for size in sizes:
        covered += size
        survivors += 1
        if 2 * covered > topology.n:
            return topology.n - survivors
    return 0


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    seeds = range(100, 105)
    layouts = {
        "m=1 (one shared memory)": ClusterTopology.single_cluster(n),
        "m=2": ClusterTopology.even_split(n, 2),
        "m=4": ClusterTopology.even_split(n, 4),
        "majority cluster + rest": ClusterTopology.with_majority_cluster(n, others=2),
        "m=n (pure messages)": ClusterTopology.singleton_clusters(n),
    }
    rows = []
    for label, topology in layouts.items():
        messages, sm_ops, rounds, latency = [], [], [], []
        for seed in seeds:
            result = run_consensus(
                ExperimentConfig(
                    topology=topology, algorithm="hybrid-local-coin", proposals="split", seed=seed
                )
            )
            result.report.raise_on_violation()
            messages.append(result.metrics.messages_sent)
            sm_ops.append(result.metrics.sm_ops)
            rounds.append(result.metrics.rounds_max)
            latency.append(result.metrics.decision_time_max)
        rows.append(
            [
                label,
                topology.m,
                f"{summarize(messages).mean:.0f}",
                f"{summarize(sm_ops).mean:.0f}",
                f"{summarize(rounds).mean:.1f}",
                f"{summarize(latency).mean:.2f}",
                max_tolerated_crashes(topology),
            ]
        )
    print(
        format_table(
            ["layout", "m", "messages", "sm ops", "rounds", "virtual latency", "crashes tolerable"],
            rows,
            title=f"Algorithm 2 on n={n} processes, split proposals, {len(list(seeds))} seeds",
        )
    )
    print()
    print("Fewer clusters -> fewer messages and rounds (shared memory does the work) and")
    print("more crashes tolerated; more clusters -> the cost shifts to the network and the")
    print("correct-majority requirement re-appears.  The hybrid model lets a deployment")
    print("pick any point on this spectrum.")


if __name__ == "__main__":
    main()
