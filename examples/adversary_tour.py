"""A tour of the fault-injection adversary: three scenarios, one safety gate.

Runs the hybrid local-coin algorithm against three library scenarios --
``lossy-links`` (omission faults), ``partition-drop`` (a network partition
that loses cross-partition messages), and ``crash-recovery`` (transient
outages) -- and prints, per scenario, what the adversary injected and what
it cost.  The paper's promise is that *safety* survives all of it:
agreement and validity must hold in every run, while termination may be
lost when messages are (by design) no longer reliably delivered.

The script exits nonzero if any run violates safety, which is what makes it
a CI smoke gate (``make examples-smoke``) and not just a demo.

Run with:  PYTHONPATH=src python examples/adversary_tour.py
"""

import sys

from repro.adversary import build_scenario
from repro.cluster.topology import ClusterTopology
from repro.harness.runner import ExperimentConfig, run_consensus
from repro.sim.kernel import SimConfig

TOPOLOGY = ClusterTopology.even_split(6, 3)
SCENARIOS = ("lossy-links", "partition-drop", "crash-recovery")
INTENSITY = 0.4
SEEDS = range(8)


def tour_one(name: str) -> bool:
    """Run one scenario across the seeds; return whether safety held."""
    scenario = build_scenario(name, n=TOPOLOGY.n, intensity=INTENSITY)
    print(f"--- scenario {scenario.describe()} (intensity {INTENSITY:g}) ---")
    promise = "may only delay" if scenario.liveness_preserving else "may forfeit"
    print(f"    liveness: this adversary {promise} termination; safety must hold regardless")

    safe = True
    terminated = omitted = duplicated = 0
    for seed in SEEDS:
        result = run_consensus(
            ExperimentConfig(
                topology=TOPOLOGY,
                algorithm="hybrid-local-coin",
                proposals="split",
                seed=seed,
                sim=SimConfig(max_rounds=30, max_time=5e4),
                scenario=scenario,
            )
        )
        ok = result.report.agreement and result.report.validity
        safe &= ok
        terminated += 1 if result.terminated else 0
        omitted += result.metrics.messages_omitted
        duplicated += result.metrics.messages_duplicated
        if not ok:
            print(f"    seed {seed}: SAFETY VIOLATED -- {result.report.violations}")

    runs = len(list(SEEDS))
    print(f"    {runs} runs: terminated {terminated}/{runs}, "
          f"messages omitted {omitted}, duplicated {duplicated}, "
          f"safety {'100%' if safe else 'VIOLATED'}")
    return safe


def main() -> int:
    """Tour the three scenarios; exit 1 if any safety check fails."""
    print(f"Fault-injection tour on {TOPOLOGY.describe()}, algorithm hybrid-local-coin\n")
    all_safe = all([tour_one(name) for name in SCENARIOS])
    if not all_safe:
        print("\nFAILED: a fault scenario broke agreement or validity")
        return 1
    print("\nAll scenarios preserved agreement and validity -- the adversary can "
          "starve progress,\nbut it cannot make the algorithms lie.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
