"""Hybrid cluster model vs the m&m model (Section III-C of the paper).

Runs Algorithm 2 and the m&m-style analogue on matched sharing structures and
prints the per-phase shared-memory cost of each: the hybrid model touches one
consensus object per cluster per phase and each process invokes exactly one,
while the m&m model touches one object per process-centred memory and each
process invokes α_i + 1 of them.

Run with:  python examples/hybrid_vs_mm.py
"""

from repro import ClusterTopology, ExperimentConfig, run_consensus
from repro.harness.report import format_table
from repro.harness.stats import summarize
from repro.mm import SharedMemoryDomain


def main() -> None:
    n, m = 12, 3
    topology = ClusterTopology.even_split(n, m)
    domain = SharedMemoryDomain.from_cluster_topology(topology)
    seeds = range(200, 206)

    print("Cluster topology:        ", topology.describe())
    print("Matched m&m neighbourhood:", domain.describe())
    print()

    rows = []
    for label, config in {
        "hybrid (Algorithm 2)": ExperimentConfig(
            topology=topology, algorithm="hybrid-local-coin", proposals="split"
        ),
        "m&m analogue": ExperimentConfig(
            topology=topology, algorithm="mm-local-coin", proposals="split", mm_domain=domain
        ),
    }.items():
        objects, invocations, messages, rounds = [], [], [], []
        for seed in seeds:
            result = run_consensus(config.with_seed(seed))
            result.report.raise_on_violation()
            objects.append(result.metrics.consensus_objects_per_phase)
            invocations.append(result.metrics.invocations_per_process_per_phase)
            messages.append(result.metrics.messages_sent)
            rounds.append(result.metrics.rounds_max)
        rows.append(
            [
                label,
                f"{summarize(objects).mean:.1f}",
                f"{summarize(invocations).mean:.1f}",
                f"{summarize(messages).mean:.0f}",
                f"{summarize(rounds).mean:.1f}",
            ]
        )
    print(
        format_table(
            ["model", "objects / phase", "invocations / process / phase", "messages", "rounds"],
            rows,
            title=f"Shared-memory cost per phase (n={n}, m={m}, cluster size {n // m})",
        )
    )
    print()
    print(f"Paper's prediction: {m} vs {n} objects per phase, 1 vs α_i+1 = {n // m} invocations per")
    print("process per phase -- and only the hybrid model enjoys 'one for all and all for one'.")


if __name__ == "__main__":
    main()
