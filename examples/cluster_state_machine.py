"""Beyond consensus: a replicated state machine inside one cluster.

The paper's model gives every cluster an operation of infinite consensus
number, which (by Herlihy's universality result) lets a cluster implement any
shared object wait-free.  This example uses the repository's universal
construction to run a small replicated counter and an append-only log inside
the majority cluster of Figure 1 (right): every member applies the same
operation sequence, so they all observe the same state.

Run with:  python examples/cluster_state_machine.py
"""

from repro import ClusterTopology
from repro.network.transport import Network
from repro.sharedmem.memory import build_cluster_memories
from repro.sharedmem.universal import UniversalObject, append_log_transition, counter_transition
from repro.sim import SimConfig, SimulationKernel
from repro.sim.rng import RandomSource


def main() -> None:
    topology = ClusterTopology.figure1_right()
    cluster_index = topology.majority_cluster_index()
    members = sorted(topology.cluster_members(cluster_index))
    print(f"Cluster P[{cluster_index + 1}] members (0-based ids): {members}")

    rng = RandomSource(99)
    kernel = SimulationKernel(config=SimConfig(), rng=rng)
    kernel.attach_network(Network(topology.n, rng=rng))
    memory = build_cluster_memories(topology)[cluster_index]
    counter = UniversalObject(memory, "hits", initial_state=0, transition=counter_transition)
    log = UniversalObject(memory, "events", initial_state=(), transition=append_log_transition)

    def member_behaviour(ctx):
        # Each member increments the counter twice and records one event,
        # interleaved arbitrarily by the asynchronous scheduler.
        yield from counter.invoke(ctx, "increment")
        yield from log.invoke(ctx, "append", f"hello from p{ctx.pid}")
        yield from counter.invoke(ctx, "increment")
        total = yield from counter.invoke(ctx, "read")
        events = yield from log.invoke(ctx, "read")
        return {"pid": ctx.pid, "counter": total, "events": events}

    for pid in members:
        kernel.add_process(pid, member_behaviour)
    # Processes outside the cluster do not participate (they cannot access MEM_x).
    for pid in topology.process_ids():
        if pid not in members:
            kernel.add_process(pid, lambda ctx: iter(()) or (yield from ctx.local_step()))

    result = kernel.run()
    print()
    for pid in members:
        view = result.decisions.get(pid)
        if view is None:
            continue
        print(f"process {pid}: counter={view['counter']}, log={list(view['events'])}")
    print()
    views = {pid: counter.local_state(pid) for pid in members}
    print(f"Counter views at each member's last applied slot: {views}")
    print(f"  (a member that finished earlier holds an older prefix; the latest view is "
          f"{max(views.values())} = every increment applied)")
    print(f"Shared log (identical linearization at every member): {list(log.local_state(members[0]))}")
    print()
    print("All members applied the same operations in the same order: the cluster's")
    print("consensus objects linearize concurrent invocations, which is exactly the")
    print("machinery Algorithms 2 and 3 use once per phase per round.")


if __name__ == "__main__":
    main()
