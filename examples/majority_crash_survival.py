"""The headline scenario: deciding although a majority of processes crashed.

Six of the seven processes of the Figure 1 (right) system crash at time 0 --
every process except one member of the majority cluster P[2].  Pure
message-passing consensus cannot terminate in such a failure pattern (it
needs a correct majority); the hybrid algorithm still decides, because the
lone survivor speaks for its whole cluster ("one for all and all for one").

Run with:  python examples/majority_crash_survival.py
"""

from repro import ClusterTopology, ExperimentConfig, FailurePattern, run_consensus
from repro.harness.report import format_table
from repro.sim import SimConfig


def main() -> None:
    topology = ClusterTopology.figure1_right()
    survivor = 2  # a member of the majority cluster {1, 2, 3, 4}
    pattern = FailurePattern.majority_crash_with_surviving_majority_cluster(topology, survivor=survivor)

    print("Topology:       ", topology.describe())
    print("Crash pattern:  ", pattern)
    print(f"Crashed processes: {sorted(pattern.crashed)}  (a majority of n={topology.n})")
    print(f"Survivor:          process {survivor} in the majority cluster")
    print()

    rows = []
    for algorithm in ("hybrid-local-coin", "hybrid-common-coin", "ben-or"):
        result = run_consensus(
            ExperimentConfig(
                topology=topology,
                algorithm=algorithm,
                proposals="split",
                seed=7,
                failure_pattern=pattern,
                sim=SimConfig(max_rounds=30, max_time=5e4),
            )
        )
        assert result.report.safety_ok
        rows.append(
            [
                algorithm,
                "yes" if result.terminated else "no (blocked)",
                result.decided_value if result.decided_value is not None else "-",
                result.metrics.rounds_max,
            ]
        )
    print(
        format_table(
            ["algorithm", "terminated", "decided value", "rounds"],
            rows,
            title="Outcome with 6 of 7 processes crashed",
        )
    )
    print()
    print("The hybrid algorithms decide; Ben-Or (pure message passing) blocks forever but")
    print("never violates safety -- it is indulgent, exactly as the paper describes.")


if __name__ == "__main__":
    main()
